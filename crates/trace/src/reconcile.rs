//! Span/matrix reconciliation.
//!
//! The engine accounts cycles twice when tracing is on: every charge lands
//! in the innermost scope's [`CycleMatrix`](wwt_sim::CycleMatrix) cell,
//! and every scope push/pop is emitted as a span event. The two views must
//! agree: for each processor and each non-[`Scope::App`] scope, the *self
//! time* of its spans (duration minus directly nested spans) equals the
//! matrix's per-scope total, and the time outside all spans equals the
//! `App` total. [`check_against_matrix`] asserts exactly that.

use wwt_sim::{Cycles, Scope, SimReport, TraceData, TraceWhat};

/// Per-processor, per-scope self time recovered from span events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelfTimes {
    per_proc: Vec<[Cycles; Scope::ALL.len()]>,
    top_level: Vec<Cycles>,
}

impl SelfTimes {
    /// Self time of `scope` spans on processor `p`: span durations minus
    /// the durations of directly nested spans.
    pub fn scope_self(&self, p: usize, scope: Scope) -> Cycles {
        self.per_proc[p][scope.index()]
    }

    /// Total duration of top-level (unnested) spans on processor `p`.
    /// `clock - top_level_total(p)` is the time attributed to
    /// [`Scope::App`].
    pub fn top_level_total(&self, p: usize) -> Cycles {
        self.top_level[p]
    }

    /// Number of processors covered.
    pub fn nprocs(&self) -> usize {
        self.per_proc.len()
    }
}

/// Replays the span events of `data` and computes per-scope self times
/// for `nprocs` processors.
///
/// # Panics
///
/// Panics if the span stream is malformed: an end without a begin, a
/// mismatched scope, an out-of-range processor, or a span left open.
/// The engine never produces such streams.
pub fn self_times(data: &TraceData, nprocs: usize) -> SelfTimes {
    let mut per_proc = vec![[0u64; Scope::ALL.len()]; nprocs];
    let mut top_level = vec![0u64; nprocs];
    // Per-proc stack of (scope, begin timestamp, nested-child time).
    let mut stacks: Vec<Vec<(Scope, Cycles, Cycles)>> = vec![Vec::new(); nprocs];
    for ev in &data.events {
        let p = ev.proc.index();
        match ev.what {
            TraceWhat::SpanBegin(s) => stacks[p].push((s, ev.at, 0)),
            TraceWhat::SpanEnd(s) => {
                let (scope, begin, child) =
                    stacks[p].pop().expect("span end without matching begin");
                assert_eq!(scope, s, "mismatched span nesting on {}", ev.proc);
                let total = ev.at - begin;
                per_proc[p][s.index()] += total - child;
                match stacks[p].last_mut() {
                    Some(parent) => parent.2 += total,
                    None => top_level[p] += total,
                }
            }
            TraceWhat::Instant(_) => {}
        }
    }
    for (p, st) in stacks.iter().enumerate() {
        assert!(st.is_empty(), "processor {p} ended the run with open spans");
    }
    SelfTimes {
        per_proc,
        top_level,
    }
}

/// Checks that the span stream and the cycle matrices of `report` agree,
/// returning every discrepancy found (empty `Ok` means they reconcile).
///
/// Returns an error if the report holds no trace data.
pub fn check_against_matrix(report: &SimReport) -> Result<(), Vec<String>> {
    let Some(data) = report.trace() else {
        return Err(vec![
            "report holds no trace data (run with SimConfig::trace)".into(),
        ]);
    };
    let st = self_times(data, report.nprocs());
    let mut errs = Vec::new();
    for proc in report.procs() {
        let p = proc.id.index();
        for s in Scope::ALL {
            if s == Scope::App {
                continue;
            }
            let from_spans = st.scope_self(p, s);
            let from_matrix = proc.matrix.by_scope(s);
            if from_spans != from_matrix {
                errs.push(format!(
                    "{}: scope {s}: spans say {from_spans}, matrix says {from_matrix}",
                    proc.id
                ));
            }
        }
        // Everything the matrix recorded advanced the clock, so time
        // outside all spans is exactly the App row.
        if proc.matrix.total() == proc.clock {
            let app_spans = proc.clock - st.top_level_total(p);
            let app_matrix = proc.matrix.by_scope(Scope::App);
            if app_spans != app_matrix {
                errs.push(format!(
                    "{}: scope app: spans say {app_spans}, matrix says {app_matrix}",
                    proc.id
                ));
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_sim::{ProcId, TraceEvent};

    fn ev(p: usize, at: Cycles, what: TraceWhat) -> TraceEvent {
        TraceEvent {
            proc: ProcId::new(p),
            at,
            what,
        }
    }

    #[test]
    fn nested_spans_split_self_time() {
        let data = TraceData {
            events: vec![
                ev(0, 10, TraceWhat::SpanBegin(Scope::Lib)),
                ev(0, 20, TraceWhat::SpanBegin(Scope::Sync)),
                ev(0, 35, TraceWhat::SpanEnd(Scope::Sync)),
                ev(0, 50, TraceWhat::SpanEnd(Scope::Lib)),
            ],
            metrics: Default::default(),
        };
        let st = self_times(&data, 1);
        assert_eq!(st.scope_self(0, Scope::Sync), 15);
        assert_eq!(st.scope_self(0, Scope::Lib), 25); // 40 total - 15 nested
        assert_eq!(st.top_level_total(0), 40);
    }

    #[test]
    fn sibling_spans_accumulate() {
        let data = TraceData {
            events: vec![
                ev(0, 0, TraceWhat::SpanBegin(Scope::Lock)),
                ev(0, 5, TraceWhat::SpanEnd(Scope::Lock)),
                ev(1, 3, TraceWhat::SpanBegin(Scope::Lock)),
                ev(1, 11, TraceWhat::SpanEnd(Scope::Lock)),
                ev(0, 9, TraceWhat::SpanBegin(Scope::Lock)),
                ev(0, 16, TraceWhat::SpanEnd(Scope::Lock)),
            ],
            metrics: Default::default(),
        };
        let st = self_times(&data, 2);
        assert_eq!(st.scope_self(0, Scope::Lock), 12);
        assert_eq!(st.scope_self(1, Scope::Lock), 8);
    }

    #[test]
    #[should_panic(expected = "open spans")]
    fn unclosed_span_panics() {
        let data = TraceData {
            events: vec![ev(0, 0, TraceWhat::SpanBegin(Scope::Lib))],
            metrics: Default::default(),
        };
        self_times(&data, 1);
    }
}
