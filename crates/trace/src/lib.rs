//! Exporters and analysis for the engine's structured traces.
//!
//! The simulation engine collects [`TraceData`] (span and instant events
//! plus latency histograms) when [`SimConfig::trace`](wwt_sim::SimConfig)
//! is set; this crate turns that data into things people and tools read:
//!
//! * [`perfetto`] — Chrome trace-event / Perfetto JSON: one track per
//!   simulated processor, spans from scope nesting, instants for packets,
//!   misses, barriers, and locks. Load the file at <https://ui.perfetto.dev>
//!   or `chrome://tracing`.
//! * [`metrics`] — the latency histograms as JSON or as an ASCII table.
//! * [`reconcile`] — recovers per-scope *self time* from the span stream
//!   and checks it against the engine's [`CycleMatrix`](wwt_sim::CycleMatrix)
//!   aggregates: the trace and the accounting must tell the same story.
//!
//! The JSON exporters are behind the default `trace-json` feature; with
//! `--no-default-features` only [`reconcile`] remains and the crate pulls
//! in no serialization code.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod reconcile;

#[cfg(feature = "trace-json")]
pub mod json;
#[cfg(feature = "trace-json")]
pub mod metrics;
#[cfg(feature = "trace-json")]
pub mod perfetto;

pub use reconcile::{check_against_matrix, self_times, SelfTimes};

#[cfg(feature = "trace-json")]
pub use metrics::{metrics_json, metrics_table};
#[cfg(feature = "trace-json")]
pub use perfetto::chrome_trace_json;

// Re-export the engine-side vocabulary so exporter users need only this
// crate.
pub use wwt_sim::{
    Histogram, Mark, Metric, MetricsRegistry, TraceBuffer, TraceData, TraceEvent, TraceSink,
    TraceWhat,
};
