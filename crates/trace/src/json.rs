//! A minimal JSON writer.
//!
//! The exporters emit a small, fixed vocabulary of objects, so instead of
//! a serialization framework this module provides just string escaping and
//! a number formatter. All output is deterministic: keys are written in a
//! fixed order by the callers, and numbers format identically run to run.

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; both
/// become `null`).
pub fn num_f64(v: f64) -> String {
    if v.is_finite() {
        // Always include a decimal point so the value reads as a float.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_characters() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(num_f64(1.5), "1.5");
        assert_eq!(num_f64(3.0), "3.0");
        assert_eq!(num_f64(f64::INFINITY), "null");
        assert_eq!(num_f64(f64::NAN), "null");
    }
}
