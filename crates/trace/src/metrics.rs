//! Latency-histogram export: JSON and an ASCII table.

use std::fmt::Write as _;

use wwt_sim::{Metric, MetricsRegistry};

use crate::json::num_f64;

/// Exports all histograms of `reg` as JSON. Every metric appears (even
/// empty ones, with `count` 0); bucket lists include only non-empty
/// buckets, as `[lo, hi, count]` triples over half-open ranges. `p50`,
/// `p90` and `p99` are percentile estimates interpolated within the
/// log2 bucket the rank falls in ([`wwt_sim::Histogram::percentile`]).
pub fn metrics_json(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("{\"metrics\":[\n");
    for (i, m) in Metric::ALL.iter().enumerate() {
        let h = reg.get(*m);
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            m.label(),
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            num_f64(h.mean()),
            num_f64(h.percentile(0.50)),
            num_f64(h.percentile(0.90)),
            num_f64(h.percentile(0.99)),
        );
        for (j, (lo, hi, c)) in h.nonempty_buckets().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lo},{hi},{c}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the non-empty histograms of `reg` as an ASCII table with
/// log-scale bucket bars.
pub fn metrics_table(reg: &MetricsRegistry) -> String {
    const BAR: usize = 40;
    let mut out = String::from("latency histograms (cycles)\n");
    let mut any = false;
    for (m, h) in reg.nonempty() {
        any = true;
        let _ = writeln!(
            out,
            "\n  {}: count={} mean={:.1} min={} max={} p50={:.0} p90={:.0} p99={:.0}",
            m.label(),
            h.count(),
            h.mean(),
            h.min(),
            h.max(),
            h.percentile(0.50),
            h.percentile(0.90),
            h.percentile(0.99),
        );
        let peak = h.nonempty_buckets().map(|(_, _, c)| c).max().unwrap_or(1);
        for (lo, hi, c) in h.nonempty_buckets() {
            let bar = ((c as u128 * BAR as u128).div_ceil(peak as u128)) as usize;
            let _ = writeln!(out, "    [{lo:>12}, {hi:>12}) {c:>10} {}", "#".repeat(bar));
        }
    }
    if !any {
        out.push_str("  (no samples)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lists_every_metric_with_nonempty_buckets_only() {
        let mut reg = MetricsRegistry::new();
        reg.record(Metric::MsgLatency, 100);
        reg.record(Metric::MsgLatency, 120);
        let s = metrics_json(&reg);
        for m in Metric::ALL {
            assert!(s.contains(&format!("\"name\":\"{}\"", m.label())), "{s}");
        }
        // 100 and 120 both land in [64, 128).
        assert!(s.contains("\"buckets\":[[64,128,2]]"));
        assert!(s.contains("\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"mean\":0.0"));
        // Empty metrics report zero percentiles too.
        assert!(s.contains("\"p50\":0.0,\"p90\":0.0,\"p99\":0.0"), "{s}");
    }

    #[test]
    fn json_and_table_carry_percentiles() {
        let mut reg = MetricsRegistry::new();
        for v in 1..=100u64 {
            reg.record(Metric::MsgLatency, v);
        }
        let s = metrics_json(&reg);
        let h = reg.get(Metric::MsgLatency);
        let expect = format!(
            "\"p50\":{},\"p90\":{},\"p99\":{}",
            num_f64(h.percentile(0.50)),
            num_f64(h.percentile(0.90)),
            num_f64(h.percentile(0.99)),
        );
        assert!(s.contains(&expect), "{s}");
        let t = metrics_table(&reg);
        assert!(
            t.contains("p50=") && t.contains("p90=") && t.contains("p99="),
            "{t}"
        );
    }

    #[test]
    fn table_draws_bars_for_samples() {
        let mut reg = MetricsRegistry::new();
        for v in [5, 6, 7, 200] {
            reg.record(Metric::LockHold, v);
        }
        let t = metrics_table(&reg);
        assert!(t.contains("lock_hold: count=4"));
        assert!(t.contains('#'));
        assert!(
            !t.contains("msg_latency"),
            "empty metrics are omitted:\n{t}"
        );
    }

    #[test]
    fn empty_registry_says_so() {
        assert!(metrics_table(&MetricsRegistry::new()).contains("no samples"));
    }
}
