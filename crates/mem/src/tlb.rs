//! Fully-associative TLB with FIFO replacement (Table 1 of the paper:
//! 64 entries, 4 KB pages).

use std::collections::VecDeque;
use std::fmt;

use wwt_sim::FastSet;

/// A fully-associative, FIFO-replacement TLB over raw page addresses.
///
/// # Example
///
/// ```
/// use wwt_mem::Tlb;
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.access(0x1000)); // miss, filled
/// assert!(tlb.access(0x1000));  // hit
/// assert!(!tlb.access(0x2000));
/// assert!(!tlb.access(0x3000)); // evicts 0x1000 (FIFO)
/// assert!(!tlb.access(0x1000));
/// ```
#[derive(Clone)]
pub struct Tlb {
    entries: usize,
    fifo: VecDeque<u64>,
    present: FastSet<u64>,
}

impl fmt::Debug for Tlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tlb")
            .field("entries", &self.entries)
            .field("resident", &self.fifo.len())
            .finish()
    }
}

impl Tlb {
    /// Creates an empty TLB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "TLB must have at least one entry");
        Tlb {
            entries,
            fifo: VecDeque::with_capacity(entries),
            present: FastSet::with_capacity_and_hasher(entries * 2, Default::default()),
        }
    }

    /// The paper's TLB: 64 entries.
    pub fn paper_default() -> Self {
        Tlb::new(64)
    }

    /// Accesses `page` (a raw page-aligned address), returning `true` on a
    /// hit. A miss fills the entry, evicting the oldest entry if full.
    pub fn access(&mut self, page: u64) -> bool {
        if self.present.contains(&page) {
            return true;
        }
        if self.fifo.len() == self.entries {
            if let Some(old) = self.fifo.pop_front() {
                self.present.remove(&old);
            }
        }
        self.fifo.push_back(page);
        self.present.insert(page);
        false
    }

    /// Number of resident translations.
    pub fn resident(&self) -> usize {
        self.fifo.len()
    }

    /// Drops all translations.
    pub fn clear(&mut self) {
        self.fifo.clear();
        self.present.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_evicts_oldest_not_lru() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        // Touch 1 again: FIFO ignores recency.
        assert!(t.access(1));
        t.access(3); // evicts 1 (oldest), not 2
        assert!(!t.access(1));
    }

    #[test]
    fn capacity_is_bounded() {
        let mut t = Tlb::new(8);
        for p in 0..100u64 {
            t.access(p << 12);
        }
        assert_eq!(t.resident(), 8);
    }

    #[test]
    fn clear_empties() {
        let mut t = Tlb::new(4);
        t.access(0x1000);
        t.clear();
        assert_eq!(t.resident(), 0);
        assert!(!t.access(0x1000));
    }
}
