//! Memory-hierarchy substrate for the WWT reproduction.
//!
//! This crate models the *state* of each node's memory system — backing
//! store, set-associative cache tags, TLB — without charging any simulated
//! cycles. The machine models (`wwt-mp`, `wwt-sm`) wrap these structures and
//! attach the paper's cost tables (Tables 1–3) to each operation.
//!
//! Both simulated machines share the same base hardware (Table 1 of the
//! paper): 256 KB 4-way set-associative caches with random replacement,
//! 32-byte blocks, a 64-entry fully-associative FIFO TLB over 4 KB pages.
//!
//! # Example
//!
//! ```
//! use wwt_mem::{Cache, CacheGeometry, AccessKind};
//!
//! let mut cache = Cache::new(CacheGeometry::paper_default(), 1);
//! let miss = cache.access(0x1000, AccessKind::Read);
//! assert!(!miss.hit);
//! let hit = cache.access(0x1000, AccessKind::Read); // same 32-byte block
//! assert!(hit.hit);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod cache;
pub mod node;
pub mod path;
pub mod tlb;

pub use addr::{GAddr, Segment, BLOCK_BYTES, PAGE_BYTES};
pub use cache::{AccessKind, AccessResult, Cache, CacheGeometry, Evicted, LineState};
pub use node::NodeMem;
pub use path::{touch, TouchOutcome};
pub use tlb::Tlb;
