//! Set-associative cache tag model with random replacement.
//!
//! The cache tracks tags and line states only; data values live in the
//! node's backing store ([`crate::NodeMem`]). This matches the Wisconsin
//! Wind Tunnel approach, where the simulator models timing and coherence
//! while data is held in host memory.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

use crate::addr::BLOCK_BYTES;

/// State of one cache line.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LineState {
    /// Present, not modified. For shared data this is a *read-only* copy
    /// (writing to it raises a write fault on the shared-memory machine).
    Clean,
    /// Present and modified (exclusive ownership for shared data).
    Dirty,
}

/// Geometry of a cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Block (line) size in bytes.
    pub block_bytes: u64,
}

impl CacheGeometry {
    /// The paper's cache: 256 KB, 4-way set associative, 32-byte blocks
    /// (Table 1).
    pub fn paper_default() -> Self {
        CacheGeometry {
            size_bytes: 256 * 1024,
            ways: 4,
            block_bytes: BLOCK_BYTES,
        }
    }

    /// The 1 MB variant used for the EM3D study (Table 16).
    pub fn one_megabyte() -> Self {
        CacheGeometry {
            size_bytes: 1024 * 1024,
            ..Self::paper_default()
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two
    /// set count, or capacity not divisible by `ways * block_bytes`).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0, "cache must have at least one way");
        let per_way = self.size_bytes / (self.ways as u64);
        assert!(
            per_way.is_multiple_of(self.block_bytes),
            "capacity not divisible by ways * block"
        );
        let sets = per_way / self.block_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets as usize
    }
}

#[derive(Copy, Clone, Debug)]
struct Line {
    /// Raw block address stored in this line (`GAddr::raw` of the block).
    tag: u64,
    state: LineState,
    valid: bool,
}

const EMPTY: Line = Line {
    tag: 0,
    state: LineState::Clean,
    valid: false,
};

/// How an access intends to use the block.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// A block evicted to make room for a fill.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Raw block address of the victim.
    pub block: u64,
    /// Victim state at eviction (a `Dirty` victim must be written back).
    pub state: LineState,
}

/// Result of a cache access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present with sufficient permission.
    ///
    /// A write to a `Clean` line is reported as a hit with
    /// `upgrade = true`: the data was present but the line needs write
    /// permission (a write fault on the shared-memory machine).
    pub hit: bool,
    /// True when a write found the block `Clean` (write-permission
    /// upgrade needed for shared data).
    pub upgrade: bool,
    /// The victim evicted by the fill, if the access missed and replaced a
    /// valid line.
    pub evicted: Option<Evicted>,
}

/// A set-associative cache with random replacement.
///
/// Accesses both probe and update the cache: a miss fills the block
/// (choosing an invalid way if one exists, otherwise a uniformly random
/// victim) and reports the evicted line so the caller can charge
/// replacement costs.
pub struct Cache {
    geometry: CacheGeometry,
    /// All lines, flat: set `s` occupies `lines[s * ways .. (s + 1) * ways]`.
    /// One contiguous allocation keeps a set probe inside a cache line or
    /// two instead of chasing a per-set heap pointer.
    lines: Vec<Line>,
    set_mask: u64,
    block_shift: u32,
    rng: SmallRng,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("geometry", &self.geometry)
            .field("resident", &self.resident_blocks())
            .finish()
    }
}

impl Cache {
    /// Creates an empty cache with the given geometry and replacement seed.
    pub fn new(geometry: CacheGeometry, seed: u64) -> Self {
        let nsets = geometry.sets();
        Cache {
            geometry,
            lines: vec![EMPTY; nsets * geometry.ways],
            set_mask: (nsets as u64) - 1,
            block_shift: geometry.block_bytes.trailing_zeros(),
            rng: SmallRng::seed_from_u64(seed ^ 0xcac4e),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_index(&self, block: u64) -> usize {
        ((block >> self.block_shift) & self.set_mask) as usize
    }

    /// The ways of the set `block` maps to, as a mutable slice.
    fn set_mut(&mut self, block: u64) -> &mut [Line] {
        let ways = self.geometry.ways;
        let start = self.set_index(block) * ways;
        &mut self.lines[start..start + ways]
    }

    /// The ways of the set `block` maps to.
    fn set_of(&self, block: u64) -> &[Line] {
        let ways = self.geometry.ways;
        let start = self.set_index(block) * ways;
        &self.lines[start..start + ways]
    }

    /// Accesses the block containing raw block address `block`
    /// (must be block-aligned), filling it on a miss.
    ///
    /// The state after the access is `Dirty` for writes and the previous
    /// state (or `Clean` on a fill) for reads.
    pub fn access(&mut self, block: u64, kind: AccessKind) -> AccessResult {
        debug_assert!(
            block & (self.geometry.block_bytes - 1) == 0,
            "unaligned block address"
        );
        let ways = self.geometry.ways;
        let start = self.set_index(block) * ways;
        let set = &mut self.lines[start..start + ways];

        for line in set.iter_mut() {
            if line.valid && line.tag == block {
                let upgrade = kind == AccessKind::Write && line.state == LineState::Clean;
                if kind == AccessKind::Write {
                    line.state = LineState::Dirty;
                }
                return AccessResult {
                    hit: true,
                    upgrade,
                    evicted: None,
                };
            }
        }

        // Miss: pick a victim (an invalid way if possible, else random).
        let victim_idx = match set.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => self.rng.gen_range(0..ways),
        };
        let victim = set[victim_idx];
        let evicted = victim.valid.then_some(Evicted {
            block: victim.tag,
            state: victim.state,
        });
        set[victim_idx] = Line {
            tag: block,
            state: if kind == AccessKind::Write {
                LineState::Dirty
            } else {
                LineState::Clean
            },
            valid: true,
        };
        AccessResult {
            hit: false,
            upgrade: false,
            evicted,
        }
    }

    /// Fills `block` with an explicit state without counting as an access
    /// (used when a coherence response installs a line). Returns the
    /// evicted victim, if any.
    pub fn fill(&mut self, block: u64, state: LineState) -> Option<Evicted> {
        let ways = self.geometry.ways;
        let start = self.set_index(block) * ways;
        let set = &mut self.lines[start..start + ways];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == block) {
            line.state = state;
            return None;
        }
        let victim_idx = match set.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => self.rng.gen_range(0..ways),
        };
        let victim = set[victim_idx];
        let evicted = victim.valid.then_some(Evicted {
            block: victim.tag,
            state: victim.state,
        });
        set[victim_idx] = Line {
            tag: block,
            state,
            valid: true,
        };
        evicted
    }

    /// Returns the state of `block` if it is resident.
    pub fn state_of(&self, block: u64) -> Option<LineState> {
        let set = self.set_of(block);
        set.iter()
            .find(|l| l.valid && l.tag == block)
            .map(|l| l.state)
    }

    /// Invalidates `block`, returning its state if it was resident.
    pub fn invalidate(&mut self, block: u64) -> Option<LineState> {
        let set = self.set_mut(block);
        for line in set.iter_mut() {
            if line.valid && line.tag == block {
                line.valid = false;
                return Some(line.state);
            }
        }
        None
    }

    /// Downgrades `block` to `Clean` (read-only), returning `true` if it
    /// was resident and `Dirty` (i.e. a writeback is needed).
    pub fn downgrade(&mut self, block: u64) -> bool {
        let set = self.set_mut(block);
        for line in set.iter_mut() {
            if line.valid && line.tag == block {
                let was_dirty = line.state == LineState::Dirty;
                line.state = LineState::Clean;
                return was_dirty;
            }
        }
        false
    }

    /// All valid resident lines as (raw block address, state) pairs.
    pub fn resident(&self) -> Vec<(u64, LineState)> {
        self.lines
            .iter()
            .filter(|l| l.valid)
            .map(|l| (l.tag, l.state))
            .collect()
    }

    /// Number of valid lines currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Invalidates everything (used between experiment phases).
    pub fn clear(&mut self) {
        self.lines.fill(EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 32B = 256B.
        Cache::new(
            CacheGeometry {
                size_bytes: 256,
                ways: 2,
                block_bytes: 32,
            },
            7,
        )
    }

    #[test]
    fn paper_geometry_has_2048_sets() {
        assert_eq!(CacheGeometry::paper_default().sets(), 2048);
        assert_eq!(CacheGeometry::one_megabyte().sets(), 8192);
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = small_cache();
        assert!(!c.access(0x0, AccessKind::Read).hit);
        assert!(c.access(0x0, AccessKind::Read).hit);
        assert_eq!(c.state_of(0x0), Some(LineState::Clean));
    }

    #[test]
    fn write_marks_dirty_and_reports_upgrade() {
        let mut c = small_cache();
        c.access(0x20, AccessKind::Read);
        let r = c.access(0x20, AccessKind::Write);
        assert!(r.hit && r.upgrade);
        assert_eq!(c.state_of(0x20), Some(LineState::Dirty));
        // Second write: no upgrade.
        let r = c.access(0x20, AccessKind::Write);
        assert!(r.hit && !r.upgrade);
    }

    #[test]
    fn conflicting_blocks_evict() {
        let mut c = small_cache();
        // Three blocks mapping to set 0 in a 2-way cache (stride = 4 sets * 32B).
        c.access(0x000, AccessKind::Write);
        c.access(0x080, AccessKind::Read);
        let r = c.access(0x100, AccessKind::Read);
        assert!(!r.hit);
        let ev = r.evicted.expect("a valid line must be evicted");
        assert!(ev.block == 0x000 || ev.block == 0x080);
        // The dirty victim reports Dirty so the caller charges a writeback.
        if ev.block == 0x000 {
            assert_eq!(ev.state, LineState::Dirty);
        }
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        c.access(0x40, AccessKind::Write);
        assert_eq!(c.invalidate(0x40), Some(LineState::Dirty));
        assert_eq!(c.state_of(0x40), None);
        assert_eq!(c.invalidate(0x40), None);
        assert!(!c.access(0x40, AccessKind::Read).hit);
    }

    #[test]
    fn downgrade_reports_writeback_need() {
        let mut c = small_cache();
        c.access(0x60, AccessKind::Write);
        assert!(c.downgrade(0x60));
        assert_eq!(c.state_of(0x60), Some(LineState::Clean));
        assert!(!c.downgrade(0x60));
    }

    #[test]
    fn fill_does_not_duplicate_resident_block() {
        let mut c = small_cache();
        c.access(0x20, AccessKind::Read);
        assert!(c.fill(0x20, LineState::Dirty).is_none());
        assert_eq!(c.state_of(0x20), Some(LineState::Dirty));
        assert_eq!(c.resident_blocks(), 1);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = small_cache();
        c.access(0x0, AccessKind::Read);
        c.access(0x20, AccessKind::Read);
        c.clear();
        assert_eq!(c.resident_blocks(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = small_cache();
        for i in 0..64 {
            c.access(i * 32, AccessKind::Read);
        }
        assert!(c.resident_blocks() <= 8);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut c = small_cache();
            let mut evictions = Vec::new();
            for i in 0..32 {
                if let Some(e) = c.access((i * 7 % 16) * 32, AccessKind::Read).evicted {
                    evictions.push(e.block);
                }
            }
            evictions
        };
        assert_eq!(run(), run());
    }
}
