//! Global addresses.
//!
//! Every node's local memory has a global address. On the shared-memory
//! machine any node may reference any address; on the message-passing
//! machine a node may only touch its own. An address carries its *segment*
//! (private or shared) and its *home node*, which the shared-memory
//! directory protocol uses to route coherence requests.

use std::fmt;

/// Cache block size in bytes (Table 1 of the paper).
pub const BLOCK_BYTES: u64 = 32;

/// Page size in bytes (Table 1 of the paper).
pub const PAGE_BYTES: u64 = 4096;

/// Which segment an address belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Segment {
    /// Per-node private data: never coherent, never remotely referenced.
    Private,
    /// Globally addressable shared data (allocated with `gmalloc`).
    Shared,
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Segment::Private => f.write_str("private"),
            Segment::Shared => f.write_str("shared"),
        }
    }
}

const OFFSET_BITS: u32 = 40;
const NODE_BITS: u32 = 10;
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;
const NODE_MASK: u64 = (1 << NODE_BITS) - 1;
const SHARED_BIT: u64 = 1 << (OFFSET_BITS + NODE_BITS);

/// A global byte address: (segment, home node, byte offset).
///
/// The encoding packs the three fields into a `u64` so addresses stay
/// `Copy` and cheap. Address arithmetic (`GAddr::offset_by`) stays within a
/// node's memory.
///
/// # Example
///
/// ```
/// use wwt_mem::{GAddr, Segment};
/// let a = GAddr::new(Segment::Shared, 3, 0x100);
/// assert_eq!(a.node(), 3);
/// assert_eq!(a.offset(), 0x100);
/// assert_eq!(a.segment(), Segment::Shared);
/// assert_eq!(a.offset_by(32).offset(), 0x120);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GAddr(u64);

impl GAddr {
    /// Creates a global address.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `offset` exceed their encodable ranges
    /// (10 bits and 40 bits respectively).
    pub fn new(segment: Segment, node: usize, offset: u64) -> Self {
        assert!((node as u64) <= NODE_MASK, "node {node} out of range");
        assert!(offset <= OFFSET_MASK, "offset {offset:#x} out of range");
        let seg = match segment {
            Segment::Private => 0,
            Segment::Shared => SHARED_BIT,
        };
        GAddr(seg | ((node as u64) << OFFSET_BITS) | offset)
    }

    /// The segment this address lives in.
    pub fn segment(self) -> Segment {
        if self.0 & SHARED_BIT != 0 {
            Segment::Shared
        } else {
            Segment::Private
        }
    }

    /// The home node of this address.
    pub fn node(self) -> usize {
        ((self.0 >> OFFSET_BITS) & NODE_MASK) as usize
    }

    /// Byte offset within the home node's memory.
    pub fn offset(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// The raw encoded value (used as a cache tag / map key).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an address from its raw encoding (the inverse of
    /// [`GAddr::raw`]).
    pub fn from_raw(raw: u64) -> GAddr {
        GAddr(raw)
    }

    /// This address advanced by `delta` bytes (same node, same segment).
    ///
    /// # Panics
    ///
    /// Panics if the result leaves the node's addressable range.
    pub fn offset_by(self, delta: u64) -> GAddr {
        let off = self.offset() + delta;
        assert!(off <= OFFSET_MASK, "address arithmetic overflow");
        GAddr((self.0 & !OFFSET_MASK) | off)
    }

    /// The address of the start of the cache block containing this address.
    pub fn block(self) -> GAddr {
        GAddr(self.0 & !(BLOCK_BYTES - 1))
    }

    /// The address of the start of the page containing this address.
    pub fn page(self) -> GAddr {
        GAddr(self.0 & !(PAGE_BYTES - 1))
    }
}

impl fmt::Debug for GAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GAddr({}, n{}, {:#x})",
            self.segment(),
            self.node(),
            self.offset()
        )
    }
}

impl fmt::Display for GAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_fields() {
        for seg in [Segment::Private, Segment::Shared] {
            for node in [0usize, 1, 31, 1023] {
                for off in [0u64, 1, 0x1234_5678, OFFSET_MASK] {
                    let a = GAddr::new(seg, node, off);
                    assert_eq!(a.segment(), seg);
                    assert_eq!(a.node(), node);
                    assert_eq!(a.offset(), off);
                }
            }
        }
    }

    #[test]
    fn block_and_page_align_down() {
        let a = GAddr::new(Segment::Shared, 5, 0x1237);
        assert_eq!(a.block().offset(), 0x1220);
        assert_eq!(a.page().offset(), 0x1000);
        assert_eq!(a.block().node(), 5);
        assert_eq!(a.block().segment(), Segment::Shared);
    }

    #[test]
    fn distinct_nodes_never_alias() {
        let a = GAddr::new(Segment::Shared, 1, 0x40);
        let b = GAddr::new(Segment::Shared, 2, 0x40);
        assert_ne!(a.raw(), b.raw());
        assert_ne!(a.block().raw(), b.block().raw());
    }

    #[test]
    fn segment_changes_raw() {
        let a = GAddr::new(Segment::Private, 1, 0x40);
        let b = GAddr::new(Segment::Shared, 1, 0x40);
        assert_ne!(a.raw(), b.raw());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_oversized_node() {
        let _ = GAddr::new(Segment::Private, 1 << 10, 0);
    }
}
