//! Per-node backing memory with bump allocation and typed access.
//!
//! Data values live here; caches only track tags and states. All target
//! data structures (matrices, graphs, solution vectors) are stored in
//! simulated node memory so the applications compute real results.

use std::fmt;

/// One node's local DRAM.
///
/// Memory grows on demand; allocation is a simple bump pointer (target
/// programs in this study allocate during initialization and never free).
///
/// # Example
///
/// ```
/// use wwt_mem::NodeMem;
/// let mut m = NodeMem::new();
/// let off = m.alloc(16, 8);
/// m.write_f64(off, 3.5);
/// assert_eq!(m.read_f64(off), 3.5);
/// ```
#[derive(Clone, Default)]
pub struct NodeMem {
    data: Vec<u8>,
    brk: u64,
}

impl fmt::Debug for NodeMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeMem")
            .field("allocated", &self.brk)
            .finish()
    }
}

impl NodeMem {
    /// Creates an empty node memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `bytes` with the given power-of-two `align`ment and
    /// returns the byte offset of the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let start = (self.brk + align - 1) & !(align - 1);
        self.brk = start + bytes;
        self.ensure(self.brk);
        start
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.brk
    }

    fn ensure(&mut self, end: u64) {
        if (self.data.len() as u64) < end {
            self.data.resize(end as usize, 0);
        }
    }

    /// Reads an `f64` at byte offset `off`.
    pub fn read_f64(&self, off: u64) -> f64 {
        f64::from_le_bytes(self.read_array(off))
    }

    /// Writes an `f64` at byte offset `off`.
    pub fn write_f64(&mut self, off: u64, v: f64) {
        self.write_bytes(off, &v.to_le_bytes());
    }

    /// Reads a `u64` at byte offset `off`.
    pub fn read_u64(&self, off: u64) -> u64 {
        u64::from_le_bytes(self.read_array(off))
    }

    /// Writes a `u64` at byte offset `off`.
    pub fn write_u64(&mut self, off: u64, v: u64) {
        self.write_bytes(off, &v.to_le_bytes());
    }

    /// Reads a `u32` at byte offset `off`.
    pub fn read_u32(&self, off: u64) -> u32 {
        u32::from_le_bytes(self.read_array(off))
    }

    /// Writes a `u32` at byte offset `off`.
    pub fn write_u32(&mut self, off: u64, v: u32) {
        self.write_bytes(off, &v.to_le_bytes());
    }

    /// Reads `dst.len()` consecutive `f64`s starting at byte offset `off`.
    pub fn read_f64s(&self, off: u64, dst: &mut [f64]) {
        let start = off as usize;
        let end = start + dst.len() * 8;
        assert!(end <= self.data.len(), "read past end of node memory");
        for (i, d) in dst.iter_mut().enumerate() {
            let o = start + i * 8;
            *d = f64::from_le_bytes(self.data[o..o + 8].try_into().expect("8 bytes"));
        }
    }

    /// Writes `src.len()` consecutive `f64`s starting at byte offset `off`.
    pub fn write_f64s(&mut self, off: u64, src: &[f64]) {
        let end = off + (src.len() * 8) as u64;
        self.ensure(end);
        let start = off as usize;
        for (i, v) in src.iter().enumerate() {
            let o = start + i * 8;
            self.data[o..o + 8].copy_from_slice(&v.to_le_bytes());
        }
    }

    fn read_array<const N: usize>(&self, off: u64) -> [u8; N] {
        let off = off as usize;
        let mut out = [0u8; N];
        let end = off + N;
        assert!(end <= self.data.len(), "read past end of node memory");
        out.copy_from_slice(&self.data[off..end]);
        out
    }

    fn write_bytes(&mut self, off: u64, bytes: &[u8]) {
        let end = off + bytes.len() as u64;
        self.ensure(end);
        self.data[off as usize..end as usize].copy_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut m = NodeMem::new();
        m.alloc(3, 1);
        let a = m.alloc(8, 8);
        assert_eq!(a % 8, 0);
        let b = m.alloc(100, 32);
        assert_eq!(b % 32, 0);
        assert!(b >= a + 8);
    }

    #[test]
    fn typed_round_trips() {
        let mut m = NodeMem::new();
        let a = m.alloc(64, 8);
        m.write_f64(a, -1.25e300);
        m.write_u64(a + 8, u64::MAX);
        m.write_u32(a + 16, 0xdead_beef);
        assert_eq!(m.read_f64(a), -1.25e300);
        assert_eq!(m.read_u64(a + 8), u64::MAX);
        assert_eq!(m.read_u32(a + 16), 0xdead_beef);
    }

    #[test]
    fn zero_initialized() {
        let mut m = NodeMem::new();
        let a = m.alloc(32, 8);
        assert_eq!(m.read_u64(a), 0);
        assert_eq!(m.read_f64(a + 8), 0.0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn out_of_bounds_read_panics() {
        let m = NodeMem::new();
        let _ = m.read_u64(0);
    }
}
