//! Block-granularity access-path helper.
//!
//! Target kernels stream over arrays; simulating every load individually
//! would be needlessly slow. [`touch`] walks the cache blocks an access
//! range covers, probing the cache and TLB once per block/page, and returns
//! an outcome summary the machine models convert into cycle charges. This
//! preserves miss counts and spatial locality exactly while charging
//! per-element work as computation.

use crate::addr::PAGE_BYTES;
use crate::cache::{AccessKind, Cache, LineState};
use crate::tlb::Tlb;

/// Summary of a block-granularity touch over an address range.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Cache blocks the range covers.
    pub blocks: u32,
    /// Blocks that missed in the cache.
    pub misses: u32,
    /// Write hits on `Clean` lines (permission upgrades / write faults).
    pub upgrades: u32,
    /// Valid victims evicted by fills, by state.
    pub clean_evictions: u32,
    /// Dirty victims evicted by fills (need write-back).
    pub dirty_evictions: u32,
    /// Pages that missed in the TLB.
    pub tlb_misses: u32,
}

impl TouchOutcome {
    /// Merges another outcome into this one.
    pub fn merge(&mut self, other: TouchOutcome) {
        self.blocks += other.blocks;
        self.misses += other.misses;
        self.upgrades += other.upgrades;
        self.clean_evictions += other.clean_evictions;
        self.dirty_evictions += other.dirty_evictions;
        self.tlb_misses += other.tlb_misses;
    }
}

/// Touches every cache block in `[addr, addr + bytes)` (raw addresses) with
/// the given access kind, updating `cache` and `tlb`.
///
/// # Example
///
/// ```
/// use wwt_mem::{Cache, CacheGeometry, Tlb, AccessKind};
/// use wwt_mem::path::touch;
///
/// let mut cache = Cache::new(CacheGeometry::paper_default(), 1);
/// let mut tlb = Tlb::paper_default();
/// let out = touch(&mut cache, &mut tlb, 0, 128, AccessKind::Read);
/// assert_eq!(out.blocks, 4);
/// assert_eq!(out.misses, 4);
/// let again = touch(&mut cache, &mut tlb, 0, 128, AccessKind::Read);
/// assert_eq!(again.misses, 0);
/// ```
pub fn touch(
    cache: &mut Cache,
    tlb: &mut Tlb,
    addr: u64,
    bytes: u64,
    kind: AccessKind,
) -> TouchOutcome {
    let mut out = TouchOutcome::default();
    if bytes == 0 {
        return out;
    }
    let block_bytes = cache.geometry().block_bytes;
    let first = addr & !(block_bytes - 1);
    let last = (addr + bytes - 1) & !(block_bytes - 1);
    let mut page = u64::MAX;
    let mut block = first;
    loop {
        let p = block & !(PAGE_BYTES - 1);
        if p != page {
            page = p;
            if !tlb.access(p) {
                out.tlb_misses += 1;
            }
        }
        let r = cache.access(block, kind);
        out.blocks += 1;
        if !r.hit {
            out.misses += 1;
        }
        if r.upgrade {
            out.upgrades += 1;
        }
        if let Some(ev) = r.evicted {
            match ev.state {
                LineState::Clean => out.clean_evictions += 1,
                LineState::Dirty => out.dirty_evictions += 1,
            }
        }
        if block == last {
            break;
        }
        block += block_bytes;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheGeometry;

    fn setup() -> (Cache, Tlb) {
        (Cache::new(CacheGeometry::paper_default(), 3), Tlb::new(4))
    }

    #[test]
    fn unaligned_range_covers_straddled_blocks() {
        let (mut c, mut t) = setup();
        // 8 bytes starting at offset 28 straddles blocks 0 and 32.
        let out = touch(&mut c, &mut t, 28, 8, AccessKind::Read);
        assert_eq!(out.blocks, 2);
        assert_eq!(out.misses, 2);
    }

    #[test]
    fn single_byte_is_one_block() {
        let (mut c, mut t) = setup();
        let out = touch(&mut c, &mut t, 100, 1, AccessKind::Write);
        assert_eq!(out.blocks, 1);
    }

    #[test]
    fn zero_bytes_touch_nothing() {
        let (mut c, mut t) = setup();
        let out = touch(&mut c, &mut t, 0, 0, AccessKind::Read);
        assert_eq!(out, TouchOutcome::default());
    }

    #[test]
    fn tlb_misses_counted_per_page() {
        let (mut c, mut t) = setup();
        let out = touch(&mut c, &mut t, 0, 2 * PAGE_BYTES, AccessKind::Read);
        assert_eq!(out.tlb_misses, 2);
        assert_eq!(out.blocks as u64, 2 * PAGE_BYTES / 32);
    }

    #[test]
    fn write_after_read_counts_upgrades() {
        let (mut c, mut t) = setup();
        touch(&mut c, &mut t, 0, 64, AccessKind::Read);
        let out = touch(&mut c, &mut t, 0, 64, AccessKind::Write);
        assert_eq!(out.misses, 0);
        assert_eq!(out.upgrades, 2);
    }

    #[test]
    fn outcome_merge_accumulates() {
        let mut a = TouchOutcome {
            blocks: 1,
            misses: 1,
            ..Default::default()
        };
        a.merge(TouchOutcome {
            blocks: 2,
            tlb_misses: 1,
            ..Default::default()
        });
        assert_eq!(a.blocks, 3);
        assert_eq!(a.misses, 1);
        assert_eq!(a.tlb_misses, 1);
    }
}
