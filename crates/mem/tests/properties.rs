//! Property-based tests of the memory substrate.

use proptest::prelude::*;

use wwt_mem::{touch, AccessKind, Cache, CacheGeometry, NodeMem, Tlb, BLOCK_BYTES};

proptest! {
    /// `touch` covers exactly the blocks the byte range straddles.
    #[test]
    fn touch_block_count_formula(addr in 0u64..100_000, bytes in 1u64..10_000) {
        let mut cache = Cache::new(CacheGeometry::paper_default(), 9);
        let mut tlb = Tlb::paper_default();
        let out = touch(&mut cache, &mut tlb, addr, bytes, AccessKind::Read);
        let first = addr / BLOCK_BYTES;
        let last = (addr + bytes - 1) / BLOCK_BYTES;
        prop_assert_eq!(out.blocks as u64, last - first + 1);
        // A cold cache misses every block exactly once.
        prop_assert_eq!(out.misses, out.blocks);
        // Touching again hits everything (the range fits in 256 KB here).
        let again = touch(&mut cache, &mut tlb, addr, bytes, AccessKind::Read);
        prop_assert_eq!(again.misses, 0);
    }

    /// Write-after-read upgrades every block exactly once.
    #[test]
    fn touch_upgrade_counts(addr in 0u64..10_000, bytes in 1u64..2_000) {
        let mut cache = Cache::new(CacheGeometry::paper_default(), 9);
        let mut tlb = Tlb::paper_default();
        let read = touch(&mut cache, &mut tlb, addr, bytes, AccessKind::Read);
        let write = touch(&mut cache, &mut tlb, addr, bytes, AccessKind::Write);
        prop_assert_eq!(write.upgrades, read.blocks);
        prop_assert_eq!(write.misses, 0);
        // A second write needs no upgrades.
        let again = touch(&mut cache, &mut tlb, addr, bytes, AccessKind::Write);
        prop_assert_eq!(again.upgrades, 0);
    }

    /// Node memory round-trips arbitrary f64 slices at arbitrary offsets.
    #[test]
    fn node_mem_round_trips(
        vals in proptest::collection::vec(-1e300f64..1e300, 1..100),
        align_sel in 0usize..4,
    ) {
        let mut m = NodeMem::new();
        let align = [1u64, 8, 32, 4096][align_sel];
        m.alloc(13, 1); // misalign the bump pointer
        let off = m.alloc((vals.len() * 8) as u64, align);
        prop_assert_eq!(off % align, 0);
        m.write_f64s(off, &vals);
        let mut got = vec![0.0f64; vals.len()];
        m.read_f64s(off, &mut got);
        for (a, b) in vals.iter().zip(&got) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Allocations never overlap.
    #[test]
    fn allocations_are_disjoint(sizes in proptest::collection::vec(1u64..500, 1..40)) {
        let mut m = NodeMem::new();
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for &s in &sizes {
            let off = m.alloc(s, 8);
            for &(o2, s2) in &regions {
                prop_assert!(off >= o2 + s2 || off + s <= o2, "overlap");
            }
            regions.push((off, s));
        }
    }

    /// Cache eviction reporting: the number of valid lines plus all
    /// reported evictions equals the number of distinct blocks inserted.
    #[test]
    fn evictions_balance_insertions(blocks in proptest::collection::vec(0u64..512, 1..300)) {
        let mut cache = Cache::new(
            CacheGeometry { size_bytes: 2048, ways: 2, block_bytes: 32 },
            5,
        );
        let mut evictions = 0usize;
        let mut fills = 0usize;
        for &b in &blocks {
            let r = cache.access(b * 32, AccessKind::Read);
            if !r.hit {
                fills += 1;
                if r.evicted.is_some() {
                    evictions += 1;
                }
            }
        }
        prop_assert_eq!(cache.resident_blocks(), fills - evictions);
    }
}
