//! Structured failure diagnostics: a stalled simulation returns a typed
//! [`SimError`] whose report names every blocked processor, its wait
//! reason, and the wait-for graph — instead of panicking — and a damaged
//! run-cache entry degrades to a miss with a warning, never a crash.

use std::rc::Rc;

use wwt::mp::{MpConfig, MpMachine};
use wwt::sim::{Engine, HwBarrier, Kind, ProcId, Sim, SimConfig, SimError};
use wwt::{run_grid, Experiment, RunnerConfig, Scale};

#[test]
fn barrier_deadlock_reports_the_blocked_processor_and_reason() {
    let mut e = Engine::new(2, SimConfig::default());
    let barrier = Rc::new(HwBarrier::new(2, 100));
    // Only P0 arrives at the two-party barrier; P1 exits immediately.
    let cpu = e.cpu(ProcId::new(0));
    let b = Rc::clone(&barrier);
    e.spawn(ProcId::new(0), async move {
        cpu.compute(10);
        b.wait(&cpu, Kind::BarrierWait).await;
    });
    e.spawn(ProcId::new(1), async move {});
    let err = e.try_run().expect_err("one-sided barrier must deadlock");
    let SimError::Deadlock(report) = &err else {
        panic!("expected Deadlock, got {err}");
    };
    assert_eq!(report.nprocs, 2);
    assert_eq!(report.blocked.len(), 1);
    assert_eq!(report.blocked[0].proc, ProcId::new(0));
    assert_eq!(report.blocked[0].reason, "barrier release");
    // The golden shape of the rendered diagnostic.
    let text = err.to_string();
    assert!(text.contains("deadlock"), "{text}");
    assert!(text.contains("P0 blocked"), "{text}");
    assert!(text.contains("barrier release"), "{text}");
    assert!(text.contains("barrier (all processors)"), "{text}");
}

#[test]
fn mp_receiver_starvation_reports_its_wait_reason() {
    let mut e = Engine::new(2, SimConfig::default());
    let m = MpMachine::new(&e, MpConfig::default());
    // P0 waits for a message nobody ever sends; P1 exits immediately.
    let cpu = e.cpu(ProcId::new(0));
    let m0 = Rc::clone(&m);
    e.spawn(ProcId::new(0), async move {
        m0.poll_until(&cpu, |n| n >= 1).await;
    });
    e.spawn(ProcId::new(1), async move {});
    let err = e.try_run().expect_err("starved receiver must deadlock");
    let text = err.to_string();
    assert!(text.contains("deadlock"), "{text}");
    assert!(text.contains("P0 blocked"), "{text}");
    assert!(text.contains("message receive"), "{text}");
    match err {
        SimError::Deadlock(report) => {
            assert_eq!(report.blocked.len(), 1);
            assert_eq!(report.blocked[0].proc, ProcId::new(0));
        }
        other => panic!("expected Deadlock, got {other}"),
    }
}

#[test]
fn watchdog_reports_livelock_with_the_parked_processor() {
    fn rearm(sim: Rc<Sim>, at: u64) {
        let next = Rc::clone(&sim);
        sim.call_at(at, move || rearm(next, at + 100))
            .expect("rearm schedules forward");
    }
    let mut e = Engine::new(
        1,
        SimConfig {
            watchdog: Some(5_000),
            ..SimConfig::default()
        },
    );
    // P0 parks on a cell nobody completes while callback events churn
    // forever without committing any processor progress.
    let cpu = e.cpu(ProcId::new(0));
    let cell = wwt::sim::WaitCell::new();
    let parked = cell.clone();
    e.spawn(ProcId::new(0), async move {
        parked.wait(&cpu, Kind::Wait).await;
    });
    rearm(Rc::clone(e.sim()), 100);
    let err = e.try_run().expect_err("event churn without progress");
    match &err {
        SimError::Livelock { watchdog, report } => {
            assert_eq!(*watchdog, 5_000);
            assert_eq!(report.blocked.len(), 1);
            assert_eq!(report.blocked[0].proc, ProcId::new(0));
        }
        other => panic!("expected Livelock, got {other}"),
    }
    let text = err.to_string();
    assert!(text.contains("livelock"), "{text}");
    assert!(text.contains("P0 blocked"), "{text}");
    drop(cell);
}

#[test]
fn scheduling_into_the_past_is_a_typed_error() {
    let e = Engine::new(1, SimConfig::default());
    let sim = Rc::clone(e.sim());
    sim.call_at(50, move || {}).unwrap();
    // Drain to t=50, then try to schedule behind the clock.
    let sim = Rc::clone(e.sim());
    let mut engine = e;
    let cpu = engine.cpu(ProcId::new(0));
    engine.spawn(ProcId::new(0), async move {
        cpu.compute(100);
        cpu.resync().await;
        let err = sim.call_at(10, move || {}).expect_err("10 is in the past");
        assert!(matches!(err, SimError::PastEvent { at: 10, .. }));
        assert!(err.to_string().contains("scheduled in the past"));
    });
    engine.run();
}

#[test]
fn corrupt_cache_entries_degrade_to_a_recomputed_run() {
    let dir = std::env::temp_dir().join(format!("wwt-diag-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = RunnerConfig {
        cache_dir: Some(dir.clone()),
        ..RunnerConfig::new(Scale::Test)
    };
    let es = [Experiment::GaussMp];
    let cold = run_grid(&es, &cfg);
    assert!(!cold[0].from_cache);

    // Sanity: an intact entry replays from disk.
    let warm = run_grid(&es, &cfg);
    assert!(warm[0].from_cache);

    // Damage every cache entry in place; the next run must fall back to
    // simulation (with a stderr warning) instead of panicking, and must
    // produce the same report section.
    for f in std::fs::read_dir(&dir).unwrap() {
        let path = f.unwrap().path();
        let text = std::fs::read(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    }
    let repaired = run_grid(&es, &cfg);
    assert!(!repaired[0].from_cache, "corrupt entry must miss");
    assert_eq!(repaired[0].summary, cold[0].summary);
    let _ = std::fs::remove_dir_all(&dir);
}
