//! Edge cases of the application pairs: odd machine sizes, single
//! processors, and invalid-parameter rejection.

use wwt::apps::{em3d, gauss, lcp};
use wwt::mp::{MpConfig, TreeShape};
use wwt::sm::SmConfig;

#[test]
fn gauss_works_on_odd_machine_sizes() {
    for procs in [1usize, 3, 5, 7] {
        let p = gauss::GaussParams {
            n: 20,
            procs,
            ..gauss::GaussParams::small()
        };
        for shape in [TreeShape::Binary, TreeShape::Lopsided] {
            let r = gauss::mp::run(&p, MpConfig::default(), shape);
            assert!(
                r.validation.passed,
                "procs={procs} {shape:?}: {}",
                r.validation.detail
            );
        }
        let r = gauss::sm::run(&p, SmConfig::default());
        assert!(
            r.validation.passed,
            "procs={procs} sm: {}",
            r.validation.detail
        );
    }
}

#[test]
fn gauss_handles_more_processors_than_spare_rows() {
    // 10 rows over 8 processors: some own 2 rows, some 1.
    let p = gauss::GaussParams {
        n: 10,
        procs: 8,
        ..gauss::GaussParams::small()
    };
    let r = gauss::mp::run(&p, MpConfig::default(), TreeShape::Lopsided);
    assert!(r.validation.passed, "{}", r.validation.detail);
}

#[test]
fn em3d_runs_on_a_single_processor() {
    let p = em3d::Em3dParams {
        procs: 1,
        ..em3d::Em3dParams::small()
    };
    let mp = em3d::mp::run(&p, MpConfig::default());
    let sm = em3d::sm::run(&p, SmConfig::default());
    assert!(mp.validation.passed && sm.validation.passed);
    // No remote edges exist on a 1-node machine.
    assert_eq!(mp.report.total_counter(wwt::sim::Counter::ChannelWrites), 0);
}

#[test]
fn em3d_all_remote_edges() {
    let p = em3d::Em3dParams {
        remote_pct: 100,
        ..em3d::Em3dParams::small()
    };
    let mp = em3d::mp::run(&p, MpConfig::default());
    let sm = em3d::sm::run(&p, SmConfig::default());
    assert!(mp.validation.passed && sm.validation.passed);
    assert_eq!(mp.artifact, sm.artifact);
}

#[test]
fn em3d_no_remote_edges() {
    let p = em3d::Em3dParams {
        remote_pct: 0,
        ..em3d::Em3dParams::small()
    };
    let mp = em3d::mp::run(&p, MpConfig::default());
    assert!(mp.validation.passed);
    assert_eq!(mp.report.total_counter(wwt::sim::Counter::PacketsSent), 0);
}

#[test]
#[should_panic(expected = "power-of-two")]
fn lcp_mp_rejects_non_power_of_two_machines() {
    let p = lcp::LcpParams {
        procs: 6,
        n: 252,
        ..lcp::LcpParams::small()
    };
    let _ = lcp::mp::run(&p, MpConfig::default(), lcp::LcpMode::Synchronous);
}

#[test]
#[should_panic(expected = "divide evenly")]
fn lcp_rejects_indivisible_row_counts() {
    let p = lcp::LcpParams {
        procs: 4,
        n: 255,
        ..lcp::LcpParams::small()
    };
    let _ = lcp::sm::run(&p, SmConfig::default(), lcp::LcpMode::Synchronous);
}

#[test]
fn lcp_single_processor_degenerates_to_sequential_sor() {
    let p = lcp::LcpParams {
        procs: 1,
        ..lcp::LcpParams::small()
    };
    let mp = lcp::mp::run(&p, MpConfig::default(), lcp::LcpMode::Synchronous);
    let sm = lcp::sm::run(&p, SmConfig::default(), lcp::LcpMode::Synchronous);
    assert!(mp.validation.passed && sm.validation.passed);
    assert_eq!(mp.artifact, sm.artifact);
}

#[test]
#[should_panic(expected = "divide evenly")]
fn mse_rejects_indivisible_body_counts() {
    let p = wwt::apps::mse::MseParams {
        bodies: 9,
        grid: 3,
        procs: 4,
        elems: 2,
        ..wwt::apps::mse::MseParams::small()
    };
    let _ = wwt::apps::mse::mp::run(&p, MpConfig::default());
}

#[test]
fn imbalance_metric_reflects_unbalanced_init() {
    // MSE-SM's node-0-heavy initialization shows up in the report's
    // imbalance measure... after the final barrier everyone ends together,
    // so the metric is near zero — the imbalance was absorbed as waiting.
    let p = wwt::apps::mse::MseParams::small();
    let r = wwt::apps::mse::sm::run(&p, SmConfig::default());
    assert!(
        r.report.imbalance() < 0.01,
        "barrier equalizes final clocks"
    );
    assert!(
        r.report.wait_fraction() > 0.02,
        "the imbalance must re-appear as waiting: {}",
        r.report.wait_fraction()
    );
}
