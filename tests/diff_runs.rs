//! End-to-end contracts of the performance differ: a run diffed against
//! itself is empty, a known hardware change produces a non-empty diff
//! that attributes the whole delta, and diff output is byte-identical
//! for any job count and for cache replays.

use std::path::PathBuf;
use std::sync::Mutex;

use wwt::diff::{diff_profiles, render_diff, RunProfile};
use wwt::{run_grid, Experiment, RunnerConfig, Scale};

/// Tests in this binary share the process-wide simulation counter, so
/// every test that runs the grid serializes on this lock.
static GRID: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GRID.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wwt-diff-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn profile_of(e: Experiment, cfg: &RunnerConfig) -> RunProfile {
    let arts = run_grid(&[e], cfg);
    arts[0]
        .phases
        .clone()
        .expect("phases requested but missing")
}

fn phased(scale: Scale) -> RunnerConfig {
    RunnerConfig {
        phases: true,
        ..RunnerConfig::new(scale)
    }
}

#[test]
fn self_diff_renders_empty() {
    let _g = lock();
    let cfg = phased(Scale::Test);
    let a = profile_of(Experiment::Em3dMp, &cfg);
    let d = diff_profiles(&a, &a);
    assert_eq!(d.delta(), 0);
    assert!(d.entries.is_empty(), "{:?}", d.entries);
    assert_eq!(render_diff(&d, &a, &a), "", "self-diff must render empty");
}

#[test]
fn known_hardware_change_is_attributed_in_full() {
    let _g = lock();
    let cfg = phased(Scale::Test);
    let a = profile_of(Experiment::Em3dMp, &cfg);
    let mut slow = cfg.clone();
    slow.arch.set("net_latency", "400").unwrap();
    let b = profile_of(Experiment::Em3dMp, &slow);

    let d = diff_profiles(&a, &b);
    assert_ne!(d.delta(), 0, "4x network latency must move em3d-mp's total");
    // Exact attribution: the entries decompose the delta with no
    // residue, so coverage is 100% (>= the 95% the differ promises).
    let sum: i64 = d.entries.iter().map(|e| e.delta).sum();
    assert_eq!(sum, d.delta());

    let text = render_diff(&d, &a, &b);
    assert!(!text.is_empty());
    assert!(text.contains("total:"), "{text}");
    // A slower network surfaces as communication-side time, not compute.
    let comm = ["send", "recv", "wait", "barrier", "poll", "retry"];
    assert!(
        comm.iter().any(|k| text.contains(k)),
        "expected a communication category in:\n{text}"
    );
}

#[test]
fn diff_text_is_identical_for_any_job_count_and_for_cache_replays() {
    let _g = lock();
    let dir = scratch_cache("jobs");
    let run = |jobs: usize| {
        let cfg = RunnerConfig {
            jobs,
            cache_dir: Some(dir.clone()),
            ..phased(Scale::Test)
        };
        let a = profile_of(Experiment::Em3dMp, &cfg);
        let mut slow = cfg.clone();
        slow.arch.set("net_latency", "400").unwrap();
        let b = profile_of(Experiment::Em3dMp, &slow);
        let d = diff_profiles(&a, &b);
        (render_diff(&d, &a, &b), a, b)
    };
    // jobs=1 simulates and fills the cache; the later calls replay it.
    let (t1, a1, b1) = run(1);
    let (t2, ..) = run(2);
    let (t4, ..) = run(4);
    assert!(!t1.is_empty());
    assert_eq!(t1, t2, "diff text must not depend on worker count");
    assert_eq!(t2, t4);

    // A cache replay yields the same profiles as the fresh run.
    let cfg = RunnerConfig {
        cache_dir: Some(dir.clone()),
        ..phased(Scale::Test)
    };
    let replayed = run_grid(&[Experiment::Em3dMp], &cfg);
    assert!(replayed[0].from_cache, "second run must hit the cache");
    assert_eq!(replayed[0].phases.as_ref(), Some(&a1));
    drop(b1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profiles_round_trip_through_the_cache_text_form() {
    let _g = lock();
    let cfg = phased(Scale::Test);
    for e in [Experiment::Em3dMp, Experiment::Em3dSm] {
        let p = profile_of(e, &cfg);
        let text = p.to_text();
        let back = RunProfile::from_text(&text).expect("parse own serialization");
        assert_eq!(p, back, "{e:?} profile must round-trip");
        assert!(p.total() > 0, "{e:?} profile carries cycles");
    }
}

#[test]
fn entries_always_decompose_the_delta_exactly() {
    let _g = lock();
    let cfg = phased(Scale::Test);
    let pairs = [
        (Experiment::Em3dMp, Experiment::Em3dSm),
        (Experiment::GaussMp, Experiment::GaussSm),
    ];
    for (ea, eb) in pairs {
        let a = profile_of(ea, &cfg);
        let b = profile_of(eb, &cfg);
        let d = diff_profiles(&a, &b);
        let sum: i64 = d.entries.iter().map(|e| e.delta).sum();
        assert_eq!(
            sum,
            d.delta(),
            "{ea:?} vs {eb:?}: entries must sum to the total delta"
        );
        // Cross-machine runs genuinely differ.
        assert!(!d.entries.is_empty());
        assert!(!render_diff(&d, &a, &b).is_empty());
    }
}
