//! The grid runner's contracts: parallel fan-out is invisible in the
//! rendered report, every artifact derives from a single simulation, and
//! the run cache replays byte-identically without simulating.

use std::path::PathBuf;
use std::sync::Mutex;

use wwt::{render_report, run_grid, simulations_performed, Experiment, RunnerConfig, Scale};

/// Tests in this binary share the process-wide simulation counter, so
/// every test that runs the grid serializes on this lock.
static GRID: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GRID.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wwt-grid-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A cross-section of the grid: both machine models, an ablation with
/// extra runs, and the phase-split EM3D pair.
const SUBSET: [Experiment; 5] = [
    Experiment::GaussMp,
    Experiment::GaussSm,
    Experiment::GaussAblation,
    Experiment::Em3dMp,
    Experiment::Em3dSm,
];

#[test]
fn report_is_byte_identical_for_any_job_count() {
    let _g = lock();
    let run = |jobs: usize| {
        let cfg = RunnerConfig {
            jobs,
            timeline: true,
            ..RunnerConfig::new(Scale::Test)
        };
        let artifacts = run_grid(&SUBSET, &cfg);
        let timelines: Vec<Option<String>> = artifacts.iter().map(|a| a.timeline.clone()).collect();
        (render_report(&artifacts, Scale::Test), timelines)
    };
    let (seq, seq_timelines) = run(1);
    let (par, par_timelines) = run(4);
    assert_eq!(seq, par, "report must not depend on worker count");
    assert_eq!(seq_timelines, par_timelines);
    assert!(seq.contains("### gauss-ablation"));
    assert!(seq.contains("headline checks pass"));
}

#[cfg(feature = "trace-json")]
#[test]
fn combined_artifact_request_simulates_each_experiment_exactly_once() {
    let _g = lock();
    let cfg = RunnerConfig {
        timeline: true,
        trace: true,
        ..RunnerConfig::new(Scale::Test)
    };
    let es = [Experiment::LcpMp, Experiment::LcpSm];
    let before = simulations_performed();
    let artifacts = run_grid(&es, &cfg);
    let after = simulations_performed();
    assert_eq!(
        after - before,
        es.len() as u64,
        "tables + timeline + trace + metrics + json must share one simulation"
    );
    for a in &artifacts {
        assert!(!a.from_cache);
        assert!(a.timeline.is_some(), "{}: timeline missing", a.experiment);
        let tr = a.trace.as_ref().expect("trace artifacts requested");
        assert!(!tr.perfetto.is_empty());
        assert!(!tr.metrics_json.is_empty());
        assert!(!tr.metrics_table.is_empty());
        assert!(tr
            .experiment_json
            .contains(&format!("\"experiment\":\"{}\"", a.experiment.id())));
    }
}

#[test]
fn cache_replays_byte_identically_without_simulating() {
    let _g = lock();
    let dir = scratch_cache("replay");
    let cfg = RunnerConfig {
        timeline: true,
        cache_dir: Some(dir.clone()),
        ..RunnerConfig::new(Scale::Test)
    };
    let es = [Experiment::GaussMp, Experiment::GaussSm];

    let cold = run_grid(&es, &cfg);
    assert!(cold.iter().all(|a| !a.from_cache));

    let before = simulations_performed();
    let warm = run_grid(&es, &cfg);
    assert_eq!(
        simulations_performed() - before,
        0,
        "a warm cache must not simulate"
    );
    assert!(warm.iter().all(|a| a.from_cache));
    assert_eq!(
        render_report(&cold, Scale::Test),
        render_report(&warm, Scale::Test),
        "cached replay must render byte-identically"
    );
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.summary, w.summary);
        assert_eq!(c.timeline, w.timeline);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_engine_config_misses_the_cache() {
    let _g = lock();
    let dir = scratch_cache("invalidate");
    let plain = RunnerConfig {
        cache_dir: Some(dir.clone()),
        ..RunnerConfig::new(Scale::Test)
    };
    let e = [Experiment::LcpMp];
    run_grid(&e, &plain);
    // Same experiment, but now with profiling: the engine config (and so
    // the cache key) differs, so the runner must simulate again.
    let profiled = RunnerConfig {
        timeline: true,
        ..plain.clone()
    };
    let before = simulations_performed();
    let arts = run_grid(&e, &profiled);
    assert_eq!(simulations_performed() - before, 1);
    assert!(!arts[0].from_cache);
    assert!(arts[0].timeline.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
