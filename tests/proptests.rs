//! Property-based tests over the simulator substrates.

use proptest::prelude::*;
use std::rc::Rc;

use wwt::mem::{AccessKind, Cache, CacheGeometry, GAddr, Segment, Tlb};
use wwt::mp::TreeShape;
use wwt::sim::{Engine, HwBarrier, Kind, ProcId, SimConfig};

proptest! {
    /// A cache never holds more lines than its capacity, never aliases
    /// distinct blocks, and hits everything it just inserted in an
    /// access sequence shorter than its associativity per set.
    #[test]
    fn cache_capacity_and_lookup(blocks in proptest::collection::vec(0u64..2048, 1..200)) {
        let geom = CacheGeometry { size_bytes: 4096, ways: 4, block_bytes: 32 };
        let mut c = Cache::new(geom, 42);
        for &b in &blocks {
            let block = b * 32;
            c.access(block, AccessKind::Read);
            // Immediately after an access the block must be resident.
            prop_assert!(c.state_of(block).is_some());
        }
        prop_assert!(c.resident_blocks() <= (geom.size_bytes / geom.block_bytes) as usize);
        // Every resident tag must be one of the accessed blocks.
        for (tag, _) in c.resident() {
            prop_assert!(blocks.contains(&(tag / 32)));
        }
    }

    /// Invalidation removes exactly the requested block.
    #[test]
    fn cache_invalidate_is_precise(blocks in proptest::collection::vec(0u64..64, 1..40), victim in 0u64..64) {
        let mut c = Cache::new(CacheGeometry { size_bytes: 4096, ways: 4, block_bytes: 32 }, 7);
        for &b in &blocks {
            c.access(b * 32, AccessKind::Write);
        }
        let before = c.resident_blocks();
        let was = c.state_of(victim * 32).is_some();
        c.invalidate(victim * 32);
        prop_assert_eq!(c.state_of(victim * 32), None);
        prop_assert_eq!(c.resident_blocks(), before - usize::from(was));
    }

    /// The TLB behaves as a FIFO of bounded size over any access string.
    #[test]
    fn tlb_is_bounded_fifo(pages in proptest::collection::vec(0u64..50, 1..300)) {
        let mut t = Tlb::new(8);
        let mut model: Vec<u64> = Vec::new();
        for &p in &pages {
            let page = p << 12;
            let hit = t.access(page);
            prop_assert_eq!(hit, model.contains(&page), "page {}", p);
            if !hit {
                if model.len() == 8 {
                    model.remove(0);
                }
                model.push(page);
            }
        }
        prop_assert_eq!(t.resident(), model.len());
    }

    /// Global addresses round-trip through their raw encoding.
    #[test]
    fn gaddr_raw_round_trips(node in 0usize..1024, off in 0u64..(1 << 40), shared: bool) {
        let seg = if shared { Segment::Shared } else { Segment::Private };
        let a = GAddr::new(seg, node, off);
        let b = GAddr::from_raw(a.raw());
        prop_assert_eq!(a, b);
        prop_assert_eq!(b.node(), node);
        prop_assert_eq!(b.offset(), off);
        prop_assert_eq!(b.segment(), seg);
    }

    /// Every tree shape spans all ranks exactly once, for any machine
    /// size and any root relabeling.
    #[test]
    fn tree_shapes_span_all_ranks(n in 1usize..130) {
        for shape in [TreeShape::Flat, TreeShape::Binary, TreeShape::Lopsided] {
            let mut reached = vec![false; n];
            reached[0] = true;
            let mut frontier = vec![0usize];
            while let Some(v) = frontier.pop() {
                for c in shape.children(v, n) {
                    prop_assert!(!reached[c]);
                    reached[c] = true;
                    frontier.push(c);
                }
            }
            prop_assert!(reached.iter().all(|&r| r));
        }
    }

    /// The hardware barrier releases everyone at (last arrival + latency),
    /// for arbitrary work distributions and multiple rounds.
    #[test]
    fn barrier_release_rule(work in proptest::collection::vec(0u64..10_000, 2..12), rounds in 1usize..4) {
        let n = work.len();
        let mut engine = Engine::new(n, SimConfig::default());
        let barrier = Rc::new(HwBarrier::new(n, 100));
        for p in engine.proc_ids() {
            let cpu = engine.cpu(p);
            let barrier = Rc::clone(&barrier);
            let w = work[p.index()];
            engine.spawn(p, async move {
                for _ in 0..rounds {
                    cpu.compute(w);
                    barrier.wait(&cpu, Kind::BarrierWait).await;
                }
            });
        }
        let report = engine.run();
        let max_work = *work.iter().max().unwrap();
        let expect = (max_work + 100) * rounds as u64;
        for i in 0..n {
            prop_assert_eq!(report.proc(ProcId::new(i)).clock, expect);
        }
    }

    /// Cycle accounting is conservative: the per-processor total equals
    /// the final clock for any charge sequence.
    #[test]
    fn charges_sum_to_clock(charges in proptest::collection::vec((0usize..10, 0u64..1000), 1..50)) {
        let mut engine = Engine::new(1, SimConfig::default());
        let cpu = engine.cpu(ProcId::new(0));
        let seq = charges.clone();
        engine.spawn(ProcId::new(0), async move {
            for (k, c) in seq {
                cpu.charge(Kind::ALL[k], c);
            }
        });
        let r = engine.run();
        let p = r.proc(ProcId::new(0));
        prop_assert_eq!(p.matrix.total(), p.clock);
    }
}

/// Shared-memory coherence invariants hold after random access patterns
/// from every node (this drives the full directory protocol, including
/// evictions, upgrades, and 4-hop recalls).
#[test]
fn sm_coherence_invariants_under_random_traffic() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use wwt::sm::{SmConfig, SmMachine};

    for seed in [1u64, 7, 1234] {
        let n = 6;
        let mut engine = Engine::new(n, SimConfig::default());
        // A tiny cache forces heavy eviction traffic.
        let cfg = SmConfig {
            arch: wwt::arch::ArchParams {
                cache: CacheGeometry {
                    size_bytes: 1024,
                    ways: 2,
                    block_bytes: 32,
                },
                ..wwt::arch::ArchParams::default()
            },
            ..SmConfig::default()
        };
        let m = SmMachine::new(&engine, cfg);
        let region: Vec<GAddr> = (0..n).map(|q| m.gmalloc_on(q, 512, 32)).collect();
        for p in engine.proc_ids() {
            let m = Rc::clone(&m);
            let cpu = engine.cpu(p);
            let region = region.clone();
            engine.spawn(p, async move {
                let mut rng = SmallRng::seed_from_u64(seed ^ (p.index() as u64) << 8);
                for _ in 0..400 {
                    let target =
                        region[rng.gen_range(0..region.len())].offset_by(rng.gen_range(0..64) * 8);
                    if rng.gen_bool(0.4) {
                        m.write_u64(&cpu, target, rng.gen()).await;
                    } else {
                        m.read_u64(&cpu, target).await;
                    }
                }
                m.barrier(&cpu).await;
            });
        }
        engine.run();
        let violations = m.coherence_violations();
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}
