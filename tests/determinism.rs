//! The engine is a deterministic discrete-event simulator: the same
//! program and seed must produce bit-identical measurements — the
//! property the Wisconsin Wind Tunnel relied on for reproducible
//! experiments.

use wwt::sim::Counter;
use wwt::{run_experiment, Experiment, Scale};

fn fingerprint(e: Experiment) -> (u64, u64, u64, String) {
    let out = run_experiment(e, Scale::Test);
    let r = &out.run.report;
    (
        r.elapsed(),
        r.events_processed(),
        r.total_counter(Counter::BytesData) + r.total_counter(Counter::BytesControl),
        out.run.validation.detail.clone(),
    )
}

#[test]
fn every_experiment_is_reproducible() {
    for e in [
        Experiment::MseMp,
        Experiment::MseSm,
        Experiment::GaussMp,
        Experiment::GaussSm,
        Experiment::Em3dMp,
        Experiment::Em3dSm,
        Experiment::LcpMp,
        Experiment::LcpSm,
        Experiment::AlcpMp,
        Experiment::AlcpSm,
    ] {
        assert_eq!(fingerprint(e), fingerprint(e), "{e} not reproducible");
    }
}

#[test]
fn per_processor_breakdowns_are_reproducible() {
    let a = run_experiment(Experiment::Em3dSm, Scale::Test);
    let b = run_experiment(Experiment::Em3dSm, Scale::Test);
    for (pa, pb) in a.run.report.procs().zip(b.run.report.procs()) {
        assert_eq!(pa.clock, pb.clock);
        assert_eq!(pa.matrix, pb.matrix);
        assert_eq!(pa.counters, pb.counters);
    }
}
