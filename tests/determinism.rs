//! The engine is a deterministic discrete-event simulator: the same
//! program and seed must produce bit-identical measurements — the
//! property the Wisconsin Wind Tunnel relied on for reproducible
//! experiments.

use proptest::prelude::*;

use wwt::sim::Counter;
use wwt::{render_report, run_experiment, run_grid, Experiment, RunnerConfig, Scale};

fn fingerprint(e: Experiment) -> (u64, u64, u64, String) {
    let out = run_experiment(e, Scale::Test);
    let r = &out.run.report;
    (
        r.elapsed(),
        r.events_processed(),
        r.total_counter(Counter::BytesData) + r.total_counter(Counter::BytesControl),
        out.run.validation.detail.clone(),
    )
}

#[test]
fn every_experiment_is_reproducible() {
    for e in [
        Experiment::MseMp,
        Experiment::MseSm,
        Experiment::GaussMp,
        Experiment::GaussSm,
        Experiment::Em3dMp,
        Experiment::Em3dSm,
        Experiment::LcpMp,
        Experiment::LcpSm,
        Experiment::AlcpMp,
        Experiment::AlcpSm,
    ] {
        assert_eq!(fingerprint(e), fingerprint(e), "{e} not reproducible");
    }
}

#[test]
fn per_processor_breakdowns_are_reproducible() {
    let a = run_experiment(Experiment::Em3dSm, Scale::Test);
    let b = run_experiment(Experiment::Em3dSm, Scale::Test);
    for (pa, pb) in a.run.report.procs().zip(b.run.report.procs()) {
        assert_eq!(pa.clock, pb.clock);
        assert_eq!(pa.matrix, pb.matrix);
        assert_eq!(pa.counters, pb.counters);
    }
}

/// The quantum-synchronized scheduler's shard count is an execution
/// detail, never a model parameter: the rendered grid report — tables,
/// events, validation, headline checks — must be byte-identical for
/// every `sim_threads` value.
#[test]
fn sim_thread_count_never_changes_the_report() {
    let es = [
        Experiment::GaussMp,
        Experiment::GaussSm,
        Experiment::Em3dMp,
        Experiment::Em3dSm,
        Experiment::LcpSm,
        Experiment::MseMp,
    ];
    let report = |sim_threads: usize| {
        let cfg = RunnerConfig {
            sim_threads,
            ..RunnerConfig::new(Scale::Test)
        };
        render_report(&run_grid(&es, &cfg), Scale::Test)
    };
    let base = report(1);
    for st in [2, 4] {
        assert_eq!(base, report(st), "sim_threads={st} changed the report");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// WWT's conservative discipline, property-tested: for the threaded
    /// parallel engine, any quantum in `1..=lookahead` combined with any
    /// shard count reproduces the sequential baseline's per-processor
    /// measurements exactly (clocks, counts, and the order-sensitive
    /// delivery checksum).
    #[test]
    fn any_quantum_and_shard_count_reproduce_the_baseline(
        quantum in 1u64..101,
        shards in 1usize..9,
        nprocs in 1usize..10,
    ) {
        use wwt::sim::parallel::workloads::install_ring;
        use wwt::sim::{ParConfig, ParEngine};

        let run = |shards: usize, quantum: u64| {
            let cfg = ParConfig { shards, quantum, ..ParConfig::default() };
            let mut eng = ParEngine::new(nprocs, cfg);
            install_ring(&mut eng, nprocs, 5, 250);
            eng.run()
        };
        let base = run(1, 100);
        prop_assert!(base.delivered() > 0);
        prop_assert_eq!(&base, &run(shards, quantum));
    }
}

/// Golden-trace determinism: two traced runs of the same experiment must
/// serialize to byte-identical Perfetto and metrics JSON.
#[cfg(feature = "trace-json")]
#[test]
fn traced_runs_export_byte_identical_json() {
    use wwt::run_experiment_with;
    use wwt::sim::SimConfig;
    use wwt::trace::{chrome_trace_json, metrics_json};

    let traced = || {
        let sim = SimConfig {
            trace: true,
            ..SimConfig::default()
        };
        let out = run_experiment_with(Experiment::Em3dMp, Scale::Test, sim);
        let report = &out.run.report;
        let data = report.trace().expect("tracing was enabled");
        assert!(!data.events.is_empty(), "a traced EM3D run records events");
        (
            chrome_trace_json(report).unwrap(),
            metrics_json(&data.metrics),
        )
    };
    let (trace_a, metrics_a) = traced();
    let (trace_b, metrics_b) = traced();
    assert!(trace_a == trace_b, "trace JSON must be byte-identical");
    assert!(
        metrics_a == metrics_b,
        "metrics JSON must be byte-identical"
    );
}
