//! The engine is a deterministic discrete-event simulator: the same
//! program and seed must produce bit-identical measurements — the
//! property the Wisconsin Wind Tunnel relied on for reproducible
//! experiments.

use wwt::sim::Counter;
use wwt::{run_experiment, Experiment, Scale};

fn fingerprint(e: Experiment) -> (u64, u64, u64, String) {
    let out = run_experiment(e, Scale::Test);
    let r = &out.run.report;
    (
        r.elapsed(),
        r.events_processed(),
        r.total_counter(Counter::BytesData) + r.total_counter(Counter::BytesControl),
        out.run.validation.detail.clone(),
    )
}

#[test]
fn every_experiment_is_reproducible() {
    for e in [
        Experiment::MseMp,
        Experiment::MseSm,
        Experiment::GaussMp,
        Experiment::GaussSm,
        Experiment::Em3dMp,
        Experiment::Em3dSm,
        Experiment::LcpMp,
        Experiment::LcpSm,
        Experiment::AlcpMp,
        Experiment::AlcpSm,
    ] {
        assert_eq!(fingerprint(e), fingerprint(e), "{e} not reproducible");
    }
}

#[test]
fn per_processor_breakdowns_are_reproducible() {
    let a = run_experiment(Experiment::Em3dSm, Scale::Test);
    let b = run_experiment(Experiment::Em3dSm, Scale::Test);
    for (pa, pb) in a.run.report.procs().zip(b.run.report.procs()) {
        assert_eq!(pa.clock, pb.clock);
        assert_eq!(pa.matrix, pb.matrix);
        assert_eq!(pa.counters, pb.counters);
    }
}

/// Golden-trace determinism: two traced runs of the same experiment must
/// serialize to byte-identical Perfetto and metrics JSON.
#[cfg(feature = "trace-json")]
#[test]
fn traced_runs_export_byte_identical_json() {
    use wwt::run_experiment_with;
    use wwt::sim::SimConfig;
    use wwt::trace::{chrome_trace_json, metrics_json};

    let traced = || {
        let sim = SimConfig {
            trace: true,
            ..SimConfig::default()
        };
        let out = run_experiment_with(Experiment::Em3dMp, Scale::Test, sim);
        let report = &out.run.report;
        let data = report.trace().expect("tracing was enabled");
        assert!(!data.events.is_empty(), "a traced EM3D run records events");
        (
            chrome_trace_json(report).unwrap(),
            metrics_json(&data.metrics),
        )
    };
    let (trace_a, metrics_a) = traced();
    let (trace_b, metrics_b) = traced();
    assert!(trace_a == trace_b, "trace JSON must be byte-identical");
    assert!(
        metrics_a == metrics_b,
        "metrics JSON must be byte-identical"
    );
}
