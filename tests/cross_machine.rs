//! Cross-machine equivalence: the message-passing and shared-memory
//! versions of each program run the same algorithm on the same workload,
//! so where the arithmetic order is identical the results must agree
//! bitwise — the property that made the paper's pairs comparable.

use wwt::apps::{em3d, gauss, lcp, mse};
use wwt::mp::{MpConfig, TreeShape};
use wwt::sim::{Kind, Scope};
use wwt::sm::SmConfig;

#[test]
fn gauss_pair_is_bitwise_identical() {
    let p = gauss::GaussParams::small();
    let mp = gauss::mp::run(&p, MpConfig::default(), TreeShape::Lopsided);
    let sm = gauss::sm::run(&p, SmConfig::default());
    assert!(mp.validation.passed && sm.validation.passed);
    assert_eq!(mp.artifact, sm.artifact);
}

#[test]
fn em3d_pair_is_bitwise_identical() {
    let p = em3d::Em3dParams::small();
    let mp = em3d::mp::run(&p, MpConfig::default());
    let sm = em3d::sm::run(&p, SmConfig::default());
    assert!(mp.validation.passed && sm.validation.passed);
    assert_eq!(mp.artifact, sm.artifact);
}

#[test]
fn lcp_sync_pair_takes_the_same_trajectory() {
    let p = lcp::LcpParams::small();
    let mp = lcp::mp::run(&p, MpConfig::default(), lcp::LcpMode::Synchronous);
    let sm = lcp::sm::run(&p, SmConfig::default(), lcp::LcpMode::Synchronous);
    assert_eq!(mp.stat("steps"), sm.stat("steps"));
    assert_eq!(mp.artifact, sm.artifact);
}

#[test]
fn mse_pair_agrees_within_schedule_staleness() {
    let p = mse::MseParams::small();
    let mp = mse::mp::run(&p, MpConfig::default());
    let sm = mse::sm::run(&p, SmConfig::default());
    assert!(mp.validation.passed && sm.validation.passed);
    let diff = mp
        .artifact
        .iter()
        .zip(&sm.artifact)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(diff < 0.1, "solutions diverge beyond staleness: {diff}");
}

#[test]
fn computation_time_is_nearly_equal_within_each_pair() {
    // The paper's headline methodological result: despite vastly different
    // communication, both versions of a program spend almost the same time
    // computing.
    let checks: Vec<(&str, u64, u64)> = vec![
        {
            let p = gauss::GaussParams::small();
            let mp = gauss::mp::run(&p, MpConfig::default(), TreeShape::Lopsided);
            let sm = gauss::sm::run(&p, SmConfig::default());
            ("gauss", comp(&mp), comp(&sm))
        },
        {
            let p = em3d::Em3dParams::small();
            let mp = em3d::mp::run(&p, MpConfig::default());
            let sm = em3d::sm::run(&p, SmConfig::default());
            ("em3d", comp(&mp), comp(&sm))
        },
        {
            let p = lcp::LcpParams::small();
            let mp = lcp::mp::run(&p, MpConfig::default(), lcp::LcpMode::Synchronous);
            let sm = lcp::sm::run(&p, SmConfig::default(), lcp::LcpMode::Synchronous);
            ("lcp", comp(&mp), comp(&sm))
        },
    ];
    for (name, c_mp, c_sm) in checks {
        let rel = (c_mp as f64 - c_sm as f64).abs() / (c_mp.max(c_sm) as f64);
        assert!(
            rel < 0.15,
            "{name}: computation differs {rel:.2}: mp {c_mp} sm {c_sm}"
        );
    }
}

fn comp(run: &wwt::apps::AppRun) -> u64 {
    run.report.avg_matrix().get(Scope::App, Kind::Compute)
}

#[test]
fn no_machine_mixes_mechanisms() {
    use wwt::sim::Counter;
    let p = gauss::GaussParams::small();
    let mp = gauss::mp::run(&p, MpConfig::default(), TreeShape::Lopsided);
    let sm = gauss::sm::run(&p, SmConfig::default());
    // The MP machine never takes shared misses; the SM machine never
    // sends packets.
    assert_eq!(mp.report.total_counter(Counter::ShMissesRemote), 0);
    assert_eq!(mp.report.total_counter(Counter::WriteFaults), 0);
    assert_eq!(sm.report.total_counter(Counter::PacketsSent), 0);
    assert_eq!(sm.report.total_counter(Counter::ActiveMessages), 0);
}
