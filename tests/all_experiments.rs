//! Every registered experiment runs and self-validates at test scale.

use wwt::{run_experiment, Experiment, Scale};

#[test]
fn every_experiment_validates_at_test_scale() {
    for e in Experiment::ALL {
        let out = run_experiment(e, Scale::Test);
        assert!(
            out.run.validation.passed,
            "{e}: {}",
            out.run.validation.detail
        );
        assert!(
            !out.tables.is_empty() || !out.events.is_empty(),
            "{e}: no output"
        );
        for t in &out.tables {
            assert!(t.total > 0.0, "{e}: empty table {}", t.title);
            // Top-level rows cover the total.
            let top: f64 = t
                .rows
                .iter()
                .filter(|r| r.indent == 0)
                .map(|r| r.cycles)
                .sum();
            assert!(
                (top - t.total).abs() / t.total < 1e-9,
                "{e}: rows of '{}' sum to {top}, total {}",
                t.title,
                t.total
            );
        }
        for (label, extra) in &out.extra_runs {
            assert!(
                extra.validation.passed,
                "{e}/{label}: {}",
                extra.validation.detail
            );
        }
    }
}

#[test]
fn experiment_output_is_renderable() {
    let out = run_experiment(Experiment::Em3dSm, Scale::Test);
    for t in &out.tables {
        let s = t.to_string();
        assert!(s.contains("Total"));
        let md = t.to_markdown();
        assert!(md.starts_with("**"));
    }
    for ev in &out.events {
        assert!(!ev.to_string().is_empty());
    }
}
