//! Golden tests pinning the paper's machine and the arch-spec grammar.
//!
//! The refactor that moved the Table-1 hardware base into `wwt-arch`
//! must not move a single number: these tests spell out every Table 1–3
//! cost the default configurations encode, so any drift — a changed
//! default, a preset leaking into `default()`, a unit slip — fails
//! loudly with the table name in hand.

use proptest::prelude::*;

use wwt::arch::{ArchParams, KEYS, PRESETS};
use wwt::mp::MpConfig;
use wwt::sm::{AllocPolicy, ProtocolMode, SmConfig};

/// Table 1: the common hardware base, exactly as published.
#[test]
fn default_arch_is_the_paper_table_1_machine() {
    let a = ArchParams::default();
    assert_eq!(a.cache.size_bytes, 256 * 1024, "Table 1: 256 KB cache");
    assert_eq!(a.cache.ways, 4, "Table 1: 4-way associative");
    assert_eq!(a.cache.block_bytes, 32, "Table 1: 32-byte blocks");
    assert_eq!(a.tlb_entries, 64, "Table 1: 64-entry TLB");
    assert_eq!(a.net_latency, 100, "Table 1: 100-cycle network");
    assert_eq!(a.msg_to_self, 10, "Table 1: 10-cycle self-message");
    assert_eq!(a.barrier_latency, 100, "Table 1: 100-cycle barrier");
    assert_eq!(a.priv_miss, 11, "Table 1: 11-cycle private miss");
    assert_eq!(a.dram, 10, "Table 1: 10-cycle DRAM access");
    assert_eq!(a.replacement, 1, "Tables 2/3: 1-cycle replacement");
    assert_eq!(a.tlb_miss, 20, "Table 1: 20-cycle TLB refill");
    assert_eq!(a.priv_miss_total(), 21, "11 + 10 = full private miss");
    assert!(a.is_paper());
    assert!(a.validate().is_ok());
}

/// Table 2: the MP machine's network-interface costs, and the shared
/// base embedded unchanged.
#[test]
fn default_mp_config_encodes_table_2() {
    let c = MpConfig::default();
    assert_eq!(c.arch, ArchParams::default(), "shared base is Table 1");
    assert_eq!(c.ni_status, 5, "Table 2: NI status access");
    assert_eq!(c.ni_tag_dest, 5, "Table 2: tag + destination write");
    assert_eq!(c.ni_send, 15, "Table 2: 5-word send");
    assert_eq!(c.ni_recv, 15, "Table 2: 5-word receive");
    assert_eq!(c.priv_miss_total(), 21);
}

/// Table 3: the SM machine's protocol costs, and the shared base
/// embedded unchanged.
#[test]
fn default_sm_config_encodes_table_3() {
    let c = SmConfig::default();
    assert_eq!(c.arch, ArchParams::default(), "shared base is Table 1");
    assert_eq!(c.shared_miss, 19, "Table 3: shared-miss handling");
    assert_eq!(c.invalidate, 3, "Table 3: invalidation");
    assert_eq!(c.repl_shared_clean, 5, "Table 3: clean replacement");
    assert_eq!(c.repl_shared_dirty, 13, "Table 3: dirty replacement");
    assert_eq!(c.dir_base, 10, "Table 3: directory base");
    assert_eq!(c.dir_recv_block, 8, "Table 3: +block received");
    assert_eq!(c.dir_send_msg, 5, "Table 3: +message sent");
    assert_eq!(c.dir_send_block, 8, "Table 3: +block sent");
    assert_eq!(c.block_msg_bytes(), 40, "Section 4: 8 + 32 byte messages");
    assert_eq!(c.alloc_policy, AllocPolicy::RoundRobin);
    assert_eq!(c.protocol, ProtocolMode::Invalidate);
    assert!(!c.stache);
}

/// Both machines read the one latency implementation: same base, same
/// answer for every (a, b) pair, including the self-message discount.
#[test]
fn machines_share_one_latency_implementation() {
    let mp = MpConfig::default();
    let sm = SmConfig::default();
    assert_eq!(mp.arch, sm.arch);
    for a in 0..4 {
        for b in 0..4 {
            assert_eq!(sm.latency(a, b), mp.arch.latency(a, b));
            let expect = if a == b { 10 } else { 100 };
            assert_eq!(sm.latency(a, b), expect);
        }
    }
}

/// Every named preset parses, validates, and hashes distinctly; `paper`
/// is the default.
#[test]
fn presets_parse_validate_and_hash_distinctly() {
    let mut hashes = Vec::new();
    for (name, _) in PRESETS {
        let a = ArchParams::parse(name).unwrap();
        assert!(a.validate().is_ok(), "{name}");
        hashes.push(a.stable_hash());
    }
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), PRESETS.len(), "presets must be distinct");
    assert_eq!(ArchParams::parse("paper").unwrap(), ArchParams::default());
}

/// Every documented key is accepted by the override grammar.
#[test]
fn every_documented_key_is_settable() {
    for (key, _) in KEYS {
        let spec = format!("paper,{key}=128");
        assert!(
            ArchParams::parse(&spec).is_ok(),
            "documented key {key} rejected"
        );
    }
}

// The scalar keys whose values are unconstrained beyond being positive;
// the cache-geometry keys carry divisibility/power-of-two invariants and
// are exercised by wwt-arch's own unit tests.
const SCALAR_KEYS: [&str; 8] = [
    "tlb_entries",
    "net_latency",
    "msg_to_self",
    "barrier_latency",
    "priv_miss",
    "dram",
    "replacement",
    "tlb_miss",
];

fn spec_from(pairs: &[(usize, u64)]) -> String {
    let mut s = String::from("paper");
    for &(k, v) in pairs {
        s.push_str(&format!(",{}={}", SCALAR_KEYS[k], v));
    }
    s
}

proptest! {
    /// Parsing the same spec twice gives the same parameters and the
    /// same stable hash, and the canonical form round-trips.
    #[test]
    fn parse_then_hash_is_deterministic(
        pairs in proptest::collection::vec((0usize..8, 1u64..10_000), 0..8)
    ) {
        let spec = spec_from(&pairs);
        let a = ArchParams::parse(&spec).unwrap();
        let b = ArchParams::parse(&spec).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.stable_hash(), b.stable_hash());
        // canonical() names every field, so re-parsing it reproduces
        // the exact point.
        let c = ArchParams::parse(&a.canonical()).unwrap();
        prop_assert_eq!(a, c);
        prop_assert_eq!(a.stable_hash(), c.stable_hash());
    }

    /// With distinct keys, assignment order is irrelevant: forward and
    /// reversed key=value lists land on the same point and hash.
    #[test]
    fn key_value_order_is_irrelevant(
        mask in 1usize..256,
        values in proptest::collection::vec(1u64..10_000, 8..9)
    ) {
        let pairs: Vec<(usize, u64)> = (0..8)
            .filter(|k| mask & (1 << k) != 0)
            .map(|k| (k, values[k]))
            .collect();
        let mut reversed = pairs.clone();
        reversed.reverse();
        let fwd = ArchParams::parse(&spec_from(&pairs)).unwrap();
        let rev = ArchParams::parse(&spec_from(&reversed)).unwrap();
        prop_assert_eq!(fwd, rev);
        prop_assert_eq!(fwd.stable_hash(), rev.stable_hash());
    }

    /// Any two different scalar points hash differently (the run cache
    /// depends on this to keep sweep points apart).
    #[test]
    fn distinct_scalar_points_hash_distinctly(
        key in 0usize..8,
        v1 in 1u64..10_000,
        v2 in 1u64..10_000
    ) {
        if v1 != v2 {
            let a = ArchParams::parse(&spec_from(&[(key, v1)])).unwrap();
            let b = ArchParams::parse(&spec_from(&[(key, v2)])).unwrap();
            prop_assert!(
                a.stable_hash() != b.stable_hash(),
                "{}={} vs {}", SCALAR_KEYS[key], v1, v2
            );
        }
    }
}
