//! Deterministic fault injection: chaos runs complete and validate, the
//! cycle accounting still balances with the `retry` category, identical
//! fault seeds replay byte-identically at any job count, and an inert
//! fault plan (all probabilities zero) is invisible in the output.

use proptest::prelude::*;

use wwt::sim::FaultConfig;
use wwt::{render_report, run_grid, Experiment, RunnerConfig, Scale};

fn cfg(jobs: usize, faults: Option<FaultConfig>) -> RunnerConfig {
    RunnerConfig {
        jobs,
        faults,
        ..RunnerConfig::new(Scale::Test)
    }
}

fn chaos(spec: &str) -> FaultConfig {
    FaultConfig::parse(spec).expect("valid fault spec")
}

/// Both machine models and every communication style in the registry.
const SUBSET: [Experiment; 6] = [
    Experiment::GaussMp,
    Experiment::GaussSm,
    Experiment::Em3dMp,
    Experiment::Em3dSm,
    Experiment::LcpMp,
    Experiment::MseMp,
];

#[test]
fn every_experiment_completes_and_validates_under_packet_loss() {
    let faults = chaos("seed=1,drop=0.01,dup=0.002,reorder=0.005,jitter=300");
    let arts = run_grid(&Experiment::ALL, &cfg(2, Some(faults)));
    assert_eq!(arts.len(), Experiment::ALL.len());
    for a in &arts {
        assert!(
            a.summary.validation_passed,
            "{} failed validation under faults: {}",
            a.experiment.id(),
            a.summary.validation_detail
        );
        // The breakdown must still balance: top-level rows (including the
        // fault-only `Retries` contribution inside the communication
        // group) account for every cycle.
        for t in &a.summary.tables {
            let top: f64 = t
                .rows
                .iter()
                .filter(|r| r.indent == 0)
                .map(|r| r.cycles)
                .sum();
            let err = (top - t.total).abs();
            assert!(
                err <= 1e-6 * t.total.max(1.0),
                "{}: top-level rows sum to {top}, table total is {}",
                t.title,
                t.total
            );
        }
    }
}

#[test]
fn mp_runs_with_drops_record_retransmissions() {
    let faults = chaos("seed=3,drop=0.02");
    let arts = run_grid(&[Experiment::Em3dMp], &cfg(1, Some(faults)));
    let events = &arts[0].summary.events[0];
    let retx = events.row("Retransmits").unwrap_or(0.0);
    assert!(
        retx > 0.0,
        "2% packet loss must force at least one retransmission"
    );
    assert!(events.row("Acks sent").unwrap_or(0.0) > 0.0);
    let retries = arts[0].summary.tables[0].row("Retries");
    assert!(
        retries.unwrap_or(0.0) > 0.0,
        "recovery cycles must appear in the breakdown's Retries row"
    );
}

#[test]
fn same_fault_seed_replays_byte_identically_across_jobs_and_repeats() {
    let faults = chaos("seed=7,drop=0.01,dup=0.001,reorder=0.002");
    let once = render_report(&run_grid(&SUBSET, &cfg(1, Some(faults))), Scale::Test);
    let again = render_report(&run_grid(&SUBSET, &cfg(1, Some(faults))), Scale::Test);
    let wide = render_report(&run_grid(&SUBSET, &cfg(4, Some(faults))), Scale::Test);
    assert_eq!(once, again, "repeat with the same seed must be identical");
    assert_eq!(once, wide, "job count must not leak into faulted output");
}

#[test]
fn sim_thread_count_never_changes_faulted_results() {
    // The scheduler shard count must be invisible even when fault
    // injection is rewriting deliveries: the fault RNG draws are keyed to
    // packets, not to scheduling, so the faulted report is byte-identical
    // for every `sim_threads` value.
    let faults = chaos("seed=7,drop=0.01,dup=0.001,reorder=0.002,jitter=150");
    let report = |sim_threads: usize| {
        let c = RunnerConfig {
            sim_threads,
            ..cfg(1, Some(faults))
        };
        render_report(&run_grid(&SUBSET, &c), Scale::Test)
    };
    let base = report(1);
    for st in [2, 4] {
        assert_eq!(base, report(st), "sim_threads={st} changed faulted output");
    }
}

#[test]
fn a_dead_node_fails_its_experiment_but_not_the_grid() {
    // Processor 0 never delivers for the entire run, so the MP machine
    // retransmits forever until the progress watchdog calls it a
    // livelock. The grid must surface that as a structured engine
    // failure on the affected experiment — naming the stalled
    // processors — while the shared-memory experiment in the same grid
    // still completes and validates, and the whole run stays
    // deterministic.
    let faults = chaos("seed=5,fail=0@0..100000000");
    let es = [Experiment::Em3dMp, Experiment::GaussSm];
    let arts = run_grid(&es, &cfg(2, Some(faults)));
    assert_eq!(arts.len(), 2);
    let (mp, sm) = (&arts[0], &arts[1]);

    assert!(
        mp.summary.engine_failed(),
        "a permanently dead node must stall the MP run, got: {}",
        mp.summary.validation_detail
    );
    assert!(!mp.summary.validation_passed);
    assert!(
        mp.summary.validation_detail.contains("livelock"),
        "watchdog expiry should be reported as a livelock: {}",
        mp.summary.validation_detail
    );
    assert!(
        mp.summary.tables.is_empty(),
        "a failed run has no breakdown tables"
    );

    assert!(
        sm.summary.validation_passed,
        "the SM experiment must finish despite its grid-mate failing: {}",
        sm.summary.validation_detail
    );
    assert!(!sm.summary.engine_failed());

    // The rendered report carries the structured failure verbatim and is
    // byte-identical between sequential and parallel grid runs.
    let report = render_report(&arts, Scale::Test);
    assert!(report.contains("validation: FAIL — engine failure: livelock"));
    let seq = render_report(&run_grid(&es, &cfg(1, Some(faults))), Scale::Test);
    assert_eq!(report, seq);
}

#[test]
fn different_fault_seeds_differ() {
    let a = render_report(
        &run_grid(
            &[Experiment::Em3dMp],
            &cfg(1, Some(chaos("seed=1,drop=0.05"))),
        ),
        Scale::Test,
    );
    let b = render_report(
        &run_grid(
            &[Experiment::Em3dMp],
            &cfg(1, Some(chaos("seed=2,drop=0.05"))),
        ),
        Scale::Test,
    );
    assert_ne!(a, b, "5% loss under different seeds should not collide");
}

#[test]
fn zero_probability_plan_is_byte_identical_to_no_faults() {
    // An explicit plan whose probabilities are all zero must not perturb
    // the simulation at all: no sequence numbers, no ACKs, no RNG draws.
    let inert = chaos("seed=9");
    let plain = render_report(&run_grid(&SUBSET, &cfg(2, None)), Scale::Test);
    let faulted = render_report(&run_grid(&SUBSET, &cfg(2, Some(inert))), Scale::Test);
    assert_eq!(plain, faulted);
}

#[test]
fn slow_window_stretches_the_victims_computation() {
    let base = run_grid(&[Experiment::GaussMp], &cfg(1, None));
    // Processor 0 computes 4x slower for a long prefix of the run.
    let slow = chaos("seed=1,slow=0@0..100000000x4");
    let slowed = run_grid(&[Experiment::GaussMp], &cfg(1, Some(slow)));
    assert!(slowed[0].summary.validation_passed);
    let total = |a: &wwt::ExperimentArtifacts| a.summary.tables[0].total;
    assert!(
        total(&slowed[0]) > total(&base[0]),
        "a slowed processor must lengthen the run ({} vs {})",
        total(&slowed[0]),
        total(&base[0])
    );
}

/// Span/matrix reconciliation must survive fault injection: retry cycles
/// charged from network callbacks land inside the open span of the
/// suspended processor, exactly like the matrix charge.
#[cfg(feature = "trace-json")]
#[test]
fn faulted_traced_run_reconciles_spans_with_the_matrix() {
    use wwt::sim::SimConfig;
    use wwt::trace::check_against_matrix;

    let sim = SimConfig {
        trace: true,
        faults: Some(chaos("seed=11,drop=0.02,dup=0.002")),
        watchdog: Some(10_000_000),
        ..SimConfig::default()
    };
    let out = wwt::run_experiment_with(Experiment::Em3dMp, Scale::Test, sim);
    assert!(out.run.validation.passed);
    check_against_matrix(&out.run.report)
        .unwrap_or_else(|errs| panic!("trace/matrix mismatch under faults:\n{}", errs.join("\n")));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For arbitrary seeds and loss rates, a faulted grid is (a) complete
    /// and validated and (b) byte-identical between a sequential and a
    /// parallel run of the same plan.
    #[test]
    fn faulted_runs_are_deterministic_for_any_seed(
        seed in 0u64..1_000_000,
        drop_pct in 0u32..3,
    ) {
        let faults = chaos(&format!("seed={seed},drop=0.0{drop_pct}"));
        let es = [Experiment::GaussMp, Experiment::Em3dMp];
        let seq = run_grid(&es, &cfg(1, Some(faults)));
        let par = run_grid(&es, &cfg(2, Some(faults)));
        for a in seq.iter().chain(par.iter()) {
            prop_assert!(a.summary.validation_passed, "{} failed", a.experiment.id());
        }
        prop_assert_eq!(
            render_report(&seq, Scale::Test),
            render_report(&par, Scale::Test)
        );
    }
}
