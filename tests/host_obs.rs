//! Host-side self-observability (`wwt_obs`): enabling the metrics
//! registry never perturbs the *simulated* output — at any scheduler
//! shard count, clean or faulted — and the flight-recorder section
//! attached to stalled-run diagnostics keeps its pinned format.

use std::rc::Rc;
use std::sync::Mutex;

use wwt::obs;
use wwt::sim::{Engine, FaultConfig, HwBarrier, Kind, ProcId, SimConfig, SimError};
use wwt::{render_report, run_grid, Experiment, RunnerConfig, Scale};

/// The registry is process-global, so every test that toggles it
/// serializes on this lock.
static OBS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Both machine models and both communication styles.
const SUBSET: [Experiment; 4] = [
    Experiment::GaussMp,
    Experiment::GaussSm,
    Experiment::Em3dMp,
    Experiment::Em3dSm,
];

fn report(sim_threads: usize, faults: Option<FaultConfig>) -> String {
    let cfg = RunnerConfig {
        sim_threads,
        faults,
        ..RunnerConfig::new(Scale::Test)
    };
    render_report(&run_grid(&SUBSET, &cfg), Scale::Test)
}

/// The acceptance gate: simulated stdout is byte-identical with and
/// without `--obs` at sim_threads 1/2/4, clean and faulted. Host metrics
/// observe wall time only; nothing in the simulation reads them back.
#[test]
fn host_metrics_never_change_simulated_output() {
    let _g = lock();
    let chaos = || FaultConfig::parse("seed=7,drop=0.01,jitter=200").expect("valid fault spec");
    for st in [1usize, 2, 4] {
        for faulted in [false, true] {
            let plan = || faulted.then(chaos);
            obs::disable();
            let base = report(st, plan());
            obs::enable();
            obs::reset();
            let observed = report(st, plan());
            obs::disable();
            assert_eq!(
                base, observed,
                "--obs changed simulated output (sim_threads={st}, faulted={faulted})"
            );
        }
    }
}

/// While enabled, a run populates the engine instruments the self-profile
/// table is built from: per-shard event throughput and queue-depth
/// high-water marks.
#[test]
fn enabled_runs_populate_the_engine_instruments() {
    let _g = lock();
    obs::enable();
    obs::reset();
    let _ = report(2, None);
    let snap = obs::snapshot_now();
    obs::disable();
    let popped: u64 = (0..obs::MAX_SHARDS)
        .map(|sh| obs::shard_counter(obs::ShardCtr::SimEventsPopped, sh))
        .sum();
    let pushed: u64 = (0..obs::MAX_SHARDS)
        .map(|sh| obs::shard_counter(obs::ShardCtr::SimEventsPushed, sh))
        .sum();
    assert!(popped > 0, "no events counted: {snap:?}");
    assert_eq!(popped, pushed, "every pushed event is eventually popped");
    let table = obs::render_table(&snap);
    assert!(table.contains("engine     events popped"), "{table}");
    assert!(table.contains("depth high-water"), "{table}");
    assert!(table.contains("grid       experiments"), "{table}");
}

fn one_sided_barrier_deadlock() -> SimError {
    let mut e = Engine::new(2, SimConfig::default());
    let barrier = Rc::new(HwBarrier::new(2, 100));
    let cpu = e.cpu(ProcId::new(0));
    let b = Rc::clone(&barrier);
    e.spawn(ProcId::new(0), async move {
        cpu.compute(10);
        b.wait(&cpu, Kind::BarrierWait).await;
    });
    e.spawn(ProcId::new(1), async move {});
    e.try_run().expect_err("one-sided barrier must deadlock")
}

/// With host metrics enabled, a stalled run's diagnostic carries the
/// "simulator state at failure" flight-recorder section; disabled, the
/// report is exactly the pre-obs text.
#[test]
fn deadlock_report_attaches_the_flight_recorder_only_when_enabled() {
    let _g = lock();
    obs::disable();
    let silent = one_sided_barrier_deadlock().to_string();
    assert!(!silent.contains("flight recorder"), "{silent}");

    obs::enable();
    obs::reset();
    obs::record_snapshot();
    let text = one_sided_barrier_deadlock().to_string();
    obs::disable();
    assert!(
        text.contains("simulator state at failure (flight recorder,"),
        "{text}"
    );
    assert!(text.starts_with(&silent), "obs section must only append");
}

/// Golden test pinning the `SimError` flight-recorder section format:
/// header with snapshot count, then one indented `[t+MSms]` line per
/// snapshot, oldest first, `name=value` / `name{{shard=N}}=value` pairs.
#[test]
fn flight_recorder_section_format_is_pinned() {
    let snaps = vec![
        obs::ObsSnapshot {
            elapsed_ms: 100,
            samples: vec![
                obs::ObsSample {
                    name: "sim_events_popped",
                    shard: Some(0),
                    value: 1200,
                },
                obs::ObsSample {
                    name: "cache_hits",
                    shard: None,
                    value: 3,
                },
            ],
        },
        obs::ObsSnapshot {
            elapsed_ms: 200,
            samples: vec![],
        },
    ];
    assert_eq!(
        obs::render_flight_recorder(&snaps),
        "simulator state at failure (flight recorder, 2 snapshots, oldest first):\n  \
         [t+100ms] sim_events_popped{shard=0}=1200 cache_hits=3\n  \
         [t+200ms] (all metrics zero)"
    );
}

/// Two runs stalling in the same simulated state compare equal even when
/// their flight recorders differ — host wall time is not simulated state.
#[test]
fn stall_reports_compare_equal_across_different_flight_recorders() {
    let _g = lock();
    obs::disable();
    let SimError::Deadlock(plain) = one_sided_barrier_deadlock() else {
        panic!("expected Deadlock");
    };
    obs::enable();
    obs::reset();
    obs::record_snapshot();
    let SimError::Deadlock(with_obs) = one_sided_barrier_deadlock() else {
        panic!("expected Deadlock");
    };
    obs::disable();
    assert!(plain.obs.is_empty());
    assert!(!with_obs.obs.is_empty());
    assert_eq!(plain, with_obs, "obs snapshots must not affect equality");
}
