//! Host-fault robustness of the result store and the grid runner: every
//! injected IO fault mode must degrade to a warned miss plus
//! re-simulation producing a byte-identical report, a panicking
//! experiment must become a failed cell instead of a dead grid, and
//! concurrent runners racing one store key must simulate it exactly
//! once.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;

use wwt::store::{self, Store, StoreConfig, StoreFaults};
use wwt::{render_report, run_grid, simulations_performed, Experiment, RunnerConfig, Scale};

/// Tests in this binary share the process-wide simulation counter, the
/// global store-fault plan, and the warning dedup registry, so every
/// test serializes on this lock.
static GRID: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GRID.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wwt-store-rob-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One experiment per machine model keeps each grid pass cheap while
/// still exercising both cache-entry shapes.
const PAIR: [Experiment; 2] = [Experiment::GaussMp, Experiment::GaussSm];

fn cached_cfg(dir: &Path) -> RunnerConfig {
    RunnerConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..RunnerConfig::new(Scale::Test)
    }
}

/// Runs the pair through the grid (cache under `dir`) and renders the
/// report — the stdout a `make_tables` invocation would print.
fn report_for(dir: &Path) -> String {
    render_report(&run_grid(&PAIR, &cached_cfg(dir)), Scale::Test)
}

/// The fault-free reference report, computed once (uncached grid run).
fn baseline() -> &'static str {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        render_report(
            &run_grid(&PAIR, &RunnerConfig::new(Scale::Test)),
            Scale::Test,
        )
    })
}

proptest! {
    // Each case runs ~20 grid passes; a few seeds buy fault-plan
    // diversity without minutes of wall clock.
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The acceptance property: for every `StoreFaults` mode injected
    /// across a grid run — torn write, bit flip, transient EIO, rename
    /// failure, and all four at once — the rendered report is
    /// byte-identical to the fault-free run (cold, re-run over the
    /// damaged store, and after repair), no panic escapes a job thread,
    /// and `--fsck` afterward reports a clean store.
    #[test]
    fn every_fault_mode_degrades_to_byte_identical_reports(seed in 0u64..1_000_000) {
        let _g = lock();
        let reference = baseline();
        for (tag, spec) in [
            ("torn", "torn=1"),
            ("flip", "flip=1"),
            ("eio", "eio=1"),
            ("rename", "rename=1"),
            ("mixed", "torn=0.5,flip=0.5,eio=0.5,rename=0.5"),
        ] {
            let dir = scratch_cache(tag);
            store::reset_fault_state();
            let plan = StoreFaults::parse(&format!("seed={seed},{spec}")).unwrap();
            store::set_global_faults(Some(plan));
            let cold = report_for(&dir);
            let rerun = report_for(&dir); // reads back whatever the faults left
            store::set_global_faults(None);
            store::reset_fault_state();
            prop_assert_eq!(&cold, reference, "{}: faulted cold run diverged", tag);
            prop_assert_eq!(&rerun, reference, "{}: re-run over faulted store diverged", tag);

            // fsck sees the real disk (no fault plan): quarantine
            // whatever the faults corrupted, then a second pass must be
            // clean.
            let repair = Store::with_config(&dir, StoreConfig::default()).fsck();
            let second = Store::with_config(&dir, StoreConfig::default()).fsck();
            prop_assert!(second.clean(), "{}: store dirty after fsck: {}", tag, second);

            // A final fault-free run over the repaired store still
            // matches, and recommits anything fsck quarantined.
            let healed = report_for(&dir);
            prop_assert_eq!(&healed, reference, "{}: post-fsck run diverged", tag);
            let _ = repair; // quarantine counts vary by seed; cleanliness is the contract
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn a_panicking_experiment_is_a_failed_cell_not_a_dead_grid() {
    let _g = lock();
    std::env::set_var("WWT_TEST_PANIC_EXPERIMENT", Experiment::GaussMp.id());
    let arts = run_grid(&PAIR, &RunnerConfig::new(Scale::Test));
    std::env::remove_var("WWT_TEST_PANIC_EXPERIMENT");
    assert_eq!(arts.len(), 2, "the grid must finish despite the panic");
    assert!(
        arts[0].summary.engine_failed(),
        "the panicking cell must report failure: {}",
        arts[0].summary.validation_detail
    );
    assert!(
        arts[0]
            .summary
            .validation_detail
            .contains("panic: injected test panic"),
        "{}",
        arts[0].summary.validation_detail
    );
    assert!(
        !arts[1].summary.engine_failed(),
        "the healthy cell must be unaffected"
    );
    // The failed cell flows through rendering like any stalled run.
    let report = render_report(&arts, Scale::Test);
    assert!(report.contains("validation: FAIL — engine failure: panic:"));
}

#[test]
fn a_panicking_job_never_caches_its_cell() {
    let _g = lock();
    let dir = scratch_cache("panic-cache");
    std::env::set_var("WWT_TEST_PANIC_EXPERIMENT", Experiment::GaussMp.id());
    let poisoned = run_grid(&[Experiment::GaussMp], &cached_cfg(&dir));
    std::env::remove_var("WWT_TEST_PANIC_EXPERIMENT");
    assert!(poisoned[0].summary.engine_failed());
    // With the panic gone the same key must re-simulate (nothing was
    // committed) and succeed.
    let healthy = run_grid(&[Experiment::GaussMp], &cached_cfg(&dir));
    assert!(!healthy[0].summary.engine_failed());
    assert!(!healthy[0].from_cache, "a failed cell must not be replayed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_threads_racing_one_key_simulate_exactly_once() {
    let _g = lock();
    let dir = scratch_cache("thread-race");
    let cfg = cached_cfg(&dir);
    let before = simulations_performed();
    let (a, b) = std::thread::scope(|s| {
        let ha = s.spawn(|| run_grid(&[Experiment::LcpMp], &cfg));
        let hb = s.spawn(|| run_grid(&[Experiment::LcpMp], &cfg));
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(
        simulations_performed() - before,
        1,
        "the entry lock must make the racers simulate the key once"
    );
    // Both racers read identical results — the loser replays the
    // winner's committed bytes.
    assert_eq!(a[0].summary, b[0].summary);
    assert!(
        a[0].from_cache != b[0].from_cache,
        "exactly one racer simulates, the other replays"
    );
    // And the store they leave behind is healthy: one valid entry, no
    // leftover temp or lock files.
    let fsck = Store::with_config(&dir, StoreConfig::default()).fsck();
    assert!(fsck.clean(), "{fsck}");
    assert_eq!(fsck.scanned, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entries_warn_once_per_path_and_are_counted() {
    let _g = lock();
    let dir = scratch_cache("warn-dedup");
    let cfg = cached_cfg(&dir);
    run_grid(&[Experiment::LcpSm], &cfg);
    // Flip a payload byte in the committed entry.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".run"))
        .expect("the run must have committed an entry");
    let mut bytes = std::fs::read(entry.path()).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(entry.path(), &bytes).unwrap();

    let (_, _, _, corrupt_before) = wwt::cache::stats();
    // The recovery run re-reads the damaged entry (miss check plus the
    // post-lock re-check): the first read prints, the repeat is only
    // counted, and the pair counts as one corrupt-recovered event.
    run_grid(&[Experiment::LcpSm], &cfg);
    let (_, _, _, corrupt_after) = wwt::cache::stats();
    assert_eq!(
        corrupt_after - corrupt_before,
        1,
        "the damaged entry must be counted as corrupt-recovered once"
    );
    let suppressed_after_recovery = store::suppressed_warnings();
    let replay = run_grid(&[Experiment::LcpSm], &cfg);
    assert!(
        replay[0].from_cache,
        "the recommit must have healed the entry"
    );
    assert_eq!(
        store::suppressed_warnings(),
        suppressed_after_recovery,
        "a healed entry must not keep warning"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grid_retries_transient_watchdog_failures() {
    // Retry accounting: a deterministic failure (config error → not
    // transient) is attempted once; the retry counter only moves for
    // the transient class. Exercised indirectly: a panic cell with
    // retries configured must still be attempted exactly once.
    let _g = lock();
    let panics_before = wwt::obs::counter(wwt::obs::Ctr::GridJobPanics);
    let retries_before = wwt::obs::counter(wwt::obs::Ctr::GridJobRetries);
    std::env::set_var("WWT_TEST_PANIC_EXPERIMENT", Experiment::LcpMp.id());
    let arts = run_grid(
        &[Experiment::LcpMp],
        &RunnerConfig {
            retries: 3,
            ..RunnerConfig::new(Scale::Test)
        },
    );
    std::env::remove_var("WWT_TEST_PANIC_EXPERIMENT");
    assert!(arts[0].summary.engine_failed());
    assert_eq!(
        wwt::obs::counter(wwt::obs::Ctr::GridJobPanics) - panics_before,
        1,
        "a panic is deterministic: one attempt, no retries"
    );
    assert_eq!(
        wwt::obs::counter(wwt::obs::Ctr::GridJobRetries) - retries_before,
        0
    );
}
