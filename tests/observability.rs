//! The structured-trace layer must tell the same story as the cycle
//! accounting: per-processor span self-times reconcile exactly with the
//! (scope × kind) matrix aggregates, latency histograms are populated by
//! the machine paths they describe, and enabling tracing never perturbs
//! the simulated timing.

use wwt::sim::{Metric, SimConfig};
use wwt::trace::check_against_matrix;
use wwt::{run_experiment, run_experiment_with, Experiment, Scale};

fn traced(e: Experiment) -> wwt::ExperimentOutput {
    let sim = SimConfig {
        trace: true,
        ..SimConfig::default()
    };
    run_experiment_with(e, Scale::Test, sim)
}

#[test]
fn em3d_mp_spans_reconcile_with_the_cycle_matrix() {
    let out = traced(Experiment::Em3dMp);
    check_against_matrix(&out.run.report)
        .unwrap_or_else(|errs| panic!("trace/matrix mismatch:\n{}", errs.join("\n")));
}

#[test]
fn em3d_sm_spans_reconcile_with_the_cycle_matrix() {
    let out = traced(Experiment::Em3dSm);
    check_against_matrix(&out.run.report)
        .unwrap_or_else(|errs| panic!("trace/matrix mismatch:\n{}", errs.join("\n")));
}

#[test]
fn every_tier1_experiment_reconciles() {
    for e in [
        Experiment::MseMp,
        Experiment::MseSm,
        Experiment::GaussMp,
        Experiment::GaussSm,
        Experiment::LcpMp,
        Experiment::LcpSm,
    ] {
        let out = traced(e);
        check_against_matrix(&out.run.report)
            .unwrap_or_else(|errs| panic!("{e}: trace/matrix mismatch:\n{}", errs.join("\n")));
    }
}

#[test]
fn mp_runs_fill_the_message_latency_histogram() {
    let out = traced(Experiment::Em3dMp);
    let data = out.run.report.trace().unwrap();
    let h = data.metrics.get(Metric::MsgLatency);
    assert!(h.count() > 0, "EM3D-MP sends messages");
    assert!(h.min() > 0, "a message cannot arrive instantaneously");
    let barrier = data.metrics.get(Metric::BarrierWait);
    assert!(barrier.count() > 0, "EM3D-MP is barrier-synchronized");
}

#[test]
fn sm_runs_fill_the_miss_and_barrier_histograms() {
    let out = traced(Experiment::Em3dSm);
    let data = out.run.report.trace().unwrap();
    let miss = data.metrics.get(Metric::ShMissService);
    assert!(miss.count() > 0, "EM3D-SM takes shared misses");
    // Every service time covers at least the processor-side miss
    // handling (Table 3: 19 cycles) plus two network crossings.
    assert!(miss.min() >= 19, "min miss service {}", miss.min());
    assert!(data.metrics.get(Metric::BarrierWait).count() > 0);
}

#[test]
fn lock_metrics_cover_contended_runs() {
    // EM3D-SM guards its node lists with MCS locks during initialization.
    let out = traced(Experiment::Em3dSm);
    let data = out.run.report.trace().unwrap();
    let hold = data.metrics.get(Metric::LockHold);
    let wait = data.metrics.get(Metric::LockWait);
    assert!(hold.count() > 0, "EM3D-SM acquires locks");
    assert_eq!(
        hold.count(),
        wait.count(),
        "every acquire samples both wait and hold"
    );
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    for e in [Experiment::Em3dMp, Experiment::Em3dSm] {
        let plain = run_experiment(e, Scale::Test);
        let traced = traced(e);
        assert_eq!(
            plain.run.report.elapsed(),
            traced.run.report.elapsed(),
            "{e}: tracing changed the simulated time"
        );
        for (a, b) in plain.run.report.procs().zip(traced.run.report.procs()) {
            assert_eq!(
                a.matrix, b.matrix,
                "{e}: tracing changed {}'s charges",
                a.id
            );
        }
    }
}

#[cfg(feature = "trace-json")]
#[test]
fn perfetto_export_is_well_formed_and_covers_all_processors() {
    use wwt::trace::chrome_trace_json;

    for e in [Experiment::Em3dMp, Experiment::Em3dSm] {
        let out = traced(e);
        let s = chrome_trace_json(&out.run.report).unwrap();
        assert!(s.starts_with("{\"displayTimeUnit\""));
        assert!(s.trim_end().ends_with("]}"));
        assert_eq!(s.matches('{').count(), s.matches('}').count(), "{e}");
        assert_eq!(
            s.matches("\"ph\":\"B\"").count(),
            s.matches("\"ph\":\"E\"").count(),
            "{e}: unbalanced spans"
        );
        for p in 0..out.run.report.nprocs() {
            assert!(
                s.contains(&format!("\"name\":\"cpu{p}\"")),
                "{e}: missing cpu{p}"
            );
        }
    }
}
