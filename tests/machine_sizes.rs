//! The paper's simulators support 1–128 processors; exercise the
//! extremes of that range on both machines.

use std::rc::Rc;

use wwt::mp::{MpConfig, MpMachine, TreeShape};
use wwt::sim::{Engine, ProcId, SimConfig};
use wwt::sm::{SmCollectives, SmConfig, SmMachine};

#[test]
fn mp_collectives_span_128_processors() {
    let n = 128;
    let mut e = Engine::new(n, SimConfig::default());
    let m = MpMachine::new(&e, MpConfig::default());
    let total = Rc::new(std::cell::Cell::new(0.0f64));
    for p in e.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = e.cpu(p);
        let total = Rc::clone(&total);
        e.spawn(p, async move {
            let s = m.reduce_sum_f64(&cpu, TreeShape::Lopsided, 0, 1.0).await;
            let v = m
                .bcast_f64(&cpu, TreeShape::Lopsided, 0, s.unwrap_or(0.0))
                .await;
            if p.index() == 0 {
                total.set(v);
            }
            m.barrier(&cpu).await;
        });
    }
    e.run();
    assert_eq!(total.get(), 128.0);
}

#[test]
fn sm_directory_tracks_128_sharers() {
    let n = 128;
    let mut e = Engine::new(n, SimConfig::default());
    let m = SmMachine::new(&e, SmConfig::default());
    let x = m.gmalloc_on(0, 8, 8);
    m.poke_f64(x, 2.5);
    for p in e.proc_ids() {
        let m = Rc::clone(&m);
        let cpu = e.cpu(p);
        e.spawn(p, async move {
            // Everyone reads (full map fills up), then node 0 writes,
            // invalidating all 127 other sharers.
            let v = m.read_f64(&cpu, x).await;
            assert_eq!(v, 2.5);
            m.barrier(&cpu).await;
            if p.index() == 0 {
                m.write_f64(&cpu, x, 3.5).await;
            }
            m.barrier(&cpu).await;
            let v = m.read_f64(&cpu, x).await;
            assert_eq!(v, 3.5);
        });
    }
    e.run();
    assert!(m.coherence_violations().is_empty());
}

#[test]
fn sm_reduction_over_128_processors() {
    let n = 128;
    let mut e = Engine::new(n, SimConfig::default());
    let m = SmMachine::new(&e, SmConfig::default());
    let coll = Rc::new(SmCollectives::new(&m));
    let got = Rc::new(std::cell::Cell::new(0.0f64));
    for p in e.proc_ids() {
        let m = Rc::clone(&m);
        let coll = Rc::clone(&coll);
        let cpu = e.cpu(p);
        let got = Rc::clone(&got);
        e.spawn(p, async move {
            if let Some(s) = coll.reduce_sum_f64(&m, &cpu, (p.index() + 1) as f64).await {
                got.set(s);
            }
            m.barrier(&cpu).await;
        });
    }
    e.run();
    assert_eq!(got.get(), (128 * 129 / 2) as f64);
}

#[test]
#[should_panic(expected = "up to 128 nodes")]
fn sm_rejects_more_than_128_processors() {
    let e = Engine::new(129, SimConfig::default());
    let _ = SmMachine::new(&e, SmConfig::default());
}

#[test]
fn one_processor_machines_work_end_to_end() {
    // Degenerate single-node machines: collectives and barriers are
    // no-ops, everything still runs.
    let mut e = Engine::new(1, SimConfig::default());
    let m = MpMachine::new(&e, MpConfig::default());
    let cpu = e.cpu(ProcId::new(0));
    let m0 = Rc::clone(&m);
    e.spawn(ProcId::new(0), async move {
        let s = m0
            .reduce_sum_f64(&cpu, TreeShape::Lopsided, 0, 7.0)
            .await
            .expect("single node is the root");
        assert_eq!(s, 7.0);
        let b = m0.bcast_f64(&cpu, TreeShape::Flat, 0, s).await;
        assert_eq!(b, 7.0);
        m0.barrier(&cpu).await;
    });
    e.run();
}
