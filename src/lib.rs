//! # WWT: paired simulators for message passing vs. shared memory
//!
//! A from-scratch Rust reproduction of
//! *"Where is Time Spent in Message-Passing and Shared-Memory Programs?"*
//! (Chandra, Larus, Rogers — ASPLOS VI, 1994).
//!
//! The crate provides:
//!
//! * a deterministic discrete-event simulation engine
//!   ([`sim`]) in which target programs are async tasks,
//! * a CM-5-like **message-passing machine** ([`mp`]): memory-mapped
//!   network interface, active messages, CMMD-style channels, and
//!   software collective trees,
//! * a **Dir_nNB cache-coherent shared-memory machine** ([`sm`]):
//!   full-map write-invalidate directory protocol with directory
//!   occupancy, MCS locks, and a parmacs-style layer,
//! * the paper's four tuned application pairs ([`apps`]): MSE, Gauss,
//!   EM3D, and LCP/ALCP,
//! * an experiment registry and reporting layer that regenerates every
//!   table of the paper's evaluation ([`run_experiment`]).
//!
//! # Quick start
//!
//! ```
//! use wwt::{run_experiment, Experiment, Scale};
//!
//! let out = run_experiment(Experiment::GaussMp, Scale::Test);
//! assert!(out.run.validation.passed);
//! println!("{}", out.tables[0]);
//! ```

#![warn(missing_docs)]

pub use wwt_core::*;
